"""Cyberaide Shell: a command-line front end over the agent.

"Several tools have been developed under the Cyberaide banner; well-known
examples are Cyberaide toolkit and Cyberaide Shell" (paper §III).  This
shell drives the agent's web methods from parsed command lines, which
gives examples and tests a user-shaped surface::

    auth ada s3cret
    sites
    run ncsa hello.exe alice 3
    output ncsa <job-id>

Every command executes as a simulation process and returns its printed
output as a string.
"""

from __future__ import annotations

import shlex
from typing import Dict, Generator, List, Optional

from repro.core.context import RequestContext, span
from repro.cyberaide.jobspec import CyberaideJobSpec
from repro.errors import ReproError
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.ws.client import WsClient

__all__ = ["CyberaideShell"]


def _coerce(text: str, xsd_type: str):
    """Coerce a shell string to the WSDL-declared parameter type."""
    try:
        if xsd_type in ("xsd:int", "xsd:long"):
            return int(text)
        if xsd_type == "xsd:double":
            return float(text)
        if xsd_type == "xsd:boolean":
            if text.lower() in ("true", "1", "yes"):
                return True
            if text.lower() in ("false", "0", "no"):
                return False
            raise ValueError(text)
        if xsd_type == "xsd:base64Binary":
            return text.encode("utf-8")
        return text
    except ValueError:
        raise ReproError(
            f"cannot read {text!r} as {xsd_type}") from None


class CyberaideShell:
    """A stateful command interpreter bound to one agent endpoint."""

    def __init__(self, client: WsClient, agent_endpoint: str,
                 inquiry_endpoint: Optional[str] = None):
        self.client = client
        self.sim = client.sim
        self.agent_endpoint = agent_endpoint
        #: Optional UDDI inquiry endpoint enabling discover/invoke.
        self.inquiry_endpoint = inquiry_endpoint
        self.session: Optional[str] = None
        #: Virtual local files the user can upload/run.
        self.files: Dict[str, bytes] = {}
        self.history: List[str] = []
        #: Context of each executed command, in order (trace inspection).
        self.recent_requests: List[RequestContext] = []

    def add_file(self, name: str, data: bytes) -> None:
        """Drop a file into the shell's virtual working directory."""
        self.files[name] = data

    def execute(self, line: str,
                ctx: Optional[RequestContext] = None) -> Process:
        """Run one command line; the process-event's value is its output.

        The shell is a request-fabric entry point: each command line
        gets its own :class:`RequestContext` unless the caller brings
        one, threaded through the agent calls the command makes.
        """
        self.history.append(line)
        if ctx is None:
            ctx = RequestContext.create(self.sim,
                                        principal=self.client.host.name)
        self.recent_requests.append(ctx)
        return self.sim.process(self._dispatch(line, ctx),
                                name=f"shell:{line[:30]}")

    # -- internals -----------------------------------------------------------

    def _agent(self, operation: str,
               ctx: Optional[RequestContext] = None, **params):
        return self.client.call(self.agent_endpoint, operation, ctx=ctx,
                                **params)

    def _dispatch(self, line: str,
                  ctx: Optional[RequestContext] = None
                  ) -> Generator[Event, None, str]:
        try:
            argv = shlex.split(line)
        except ValueError as exc:
            return f"error: {exc}"
        if not argv:
            return ""
        command, *args = argv
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return f"error: unknown command {command!r} (try 'help')"
        try:
            with span(ctx, f"shell:{command}"):
                result = yield from handler(args, ctx)
            return result
        except ReproError as exc:
            return f"error: {exc}"

    def _require_session(self) -> str:
        if self.session is None:
            raise ReproError("not authenticated (use: auth <user> <pass>)")
        return self.session

    # -- commands ----------------------------------------------------------------

    def _cmd_help(self, args, ctx=None) -> Generator[Event, None, str]:
        yield self.sim.timeout(0)
        return ("commands: help | auth <user> <pass> | sites | "
                "run <site> <file> [args...] | status <site> <job> | "
                "cancel <site> <job> | output <site> <job> | files | "
                "discover <pattern> | invoke <pattern> [name=value...]")

    def _cmd_files(self, args, ctx=None) -> Generator[Event, None, str]:
        yield self.sim.timeout(0)
        return "\n".join(f"{name} ({len(data)} bytes)"
                         for name, data in sorted(self.files.items())) or "(none)"

    def _cmd_auth(self, args, ctx=None) -> Generator[Event, None, str]:
        if len(args) != 2:
            raise ReproError("usage: auth <user> <passphrase>")
        self.session = yield self._agent("authenticate", ctx=ctx,
                                         username=args[0],
                                         passphrase=args[1])
        return f"authenticated: session {self.session}"

    def _cmd_sites(self, args, ctx=None) -> Generator[Event, None, str]:
        self._require_session()
        listing = yield self._agent("listSites", ctx=ctx)
        return listing.replace(",", "\n")

    def _cmd_run(self, args, ctx=None) -> Generator[Event, None, str]:
        if len(args) < 2:
            raise ReproError("usage: run <site> <file> [args...]")
        session = self._require_session()
        site, filename, *job_args = args
        if filename not in self.files:
            raise ReproError(f"no local file {filename!r} (see 'files')")
        spec = CyberaideJobSpec(filename, arguments=job_args)
        yield self._agent("uploadExecutable", ctx=ctx, session=session,
                          site=site, path=spec.staged_path(),
                          data=self.files[filename])
        job_id = yield self._agent("submitJob", ctx=ctx, session=session,
                                   site=site,
                                   rsl=spec.to_rsl(job_tag="shell"))
        return f"submitted: {job_id}"

    def _cmd_status(self, args, ctx=None) -> Generator[Event, None, str]:
        if len(args) != 2:
            raise ReproError("usage: status <site> <job-id>")
        session = self._require_session()
        state = yield self._agent("jobStatus", ctx=ctx, session=session,
                                  site=args[0], jobId=args[1])
        return f"{args[1]}: {state}"

    def _cmd_output(self, args, ctx=None) -> Generator[Event, None, str]:
        if len(args) != 2:
            raise ReproError("usage: output <site> <job-id>")
        session = self._require_session()
        data = yield self._agent("fetchOutput", ctx=ctx, session=session,
                                 site=args[0], jobId=args[1])
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError:
            return f"(binary output, {len(data)} bytes)"

    def _cmd_cancel(self, args, ctx=None) -> Generator[Event, None, str]:
        if len(args) != 2:
            raise ReproError("usage: cancel <site> <job-id>")
        session = self._require_session()
        ok = yield self._agent("cancelJob", ctx=ctx, session=session,
                               site=args[0], jobId=args[1])
        return f"{args[1]}: {'canceled' if ok else 'not canceled'}"

    # -- SaaS-side commands (need the UDDI inquiry endpoint) -----------------

    def _require_inquiry(self) -> str:
        if self.inquiry_endpoint is None:
            raise ReproError("no UDDI inquiry endpoint configured")
        return self.inquiry_endpoint

    def _cmd_discover(self, args, ctx=None) -> Generator[Event, None, str]:
        if len(args) != 1:
            raise ReproError("usage: discover <name-pattern>")
        inquiry = self._require_inquiry()
        raw = yield self.client.call(inquiry, "findService", ctx=ctx,
                                     pattern=args[0])
        from repro.ws.uddi_service import parse_service_lines
        hits = parse_service_lines(raw)
        if not hits:
            return "(no services match)"
        return "\n".join(f"{h['name']}  —  {h['description'] or '(no description)'}"
                         for h in hits)

    def _cmd_invoke(self, args, ctx=None) -> Generator[Event, None, str]:
        if not args:
            raise ReproError("usage: invoke <name-pattern> [name=value...]")
        inquiry = self._require_inquiry()
        pattern, *pairs = args
        raw_params: Dict[str, str] = {}
        for pair in pairs:
            if "=" not in pair:
                raise ReproError(f"bad parameter {pair!r} (want name=value)")
            key, _, value = pair.partition("=")
            raw_params[key] = value

        from repro.ws.client import generate_stub
        from repro.ws.uddi_service import parse_binding_lines, parse_service_lines

        hits = parse_service_lines(
            (yield self.client.call(inquiry, "findService", ctx=ctx,
                                    pattern=pattern)))
        if not hits:
            raise ReproError(f"no service matches {pattern!r}")
        bindings = parse_binding_lines(
            (yield self.client.call(inquiry, "getBindings", ctx=ctx,
                                    serviceKey=hits[0]["key"])))
        if not bindings:
            raise ReproError(f"service {hits[0]['name']!r} has no binding")
        endpoint = bindings[0]["access_point"]
        document = yield self.client.fetch_wsdl(endpoint, ctx=ctx)
        stub = generate_stub(document)(self.client)
        execute = stub.DESCRIPTION.operation("execute")
        # Coerce the string parameters to the WSDL-declared types.
        typed: Dict[str, object] = {}
        for p in execute.params:
            if p.name not in raw_params:
                raise ReproError(f"missing parameter {p.name!r} "
                                 f"(service expects "
                                 f"{[q.name for q in execute.params]})")
            typed[p.name] = _coerce(raw_params[p.name], p.xsd_type)
        extra = set(raw_params) - {p.name for p in execute.params}
        if extra:
            raise ReproError(f"unknown parameters {sorted(extra)}")
        result = yield stub.execute(ctx=ctx, **typed)
        return str(result)
