"""Figure 8: upload a file through the portal and generate its service.

Paper (§VIII.C): "Figure 8 shows a high peak of the network input graph,
indicating the reception of the file.  The used network operates at
1000Mbit/s, explaining the peak's height.  The CPU utilization is very
high due to the reception and storage of the file and also because of
tomcat handling the request and loading the java-classes.  Also, the Web
service is being created. ... Two peaks indicating write hard disk
activity show, that the file is written two times.  The problem is, that
the file is first stored temporarily and then in the database."
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.onserve import OnServeConfig
from repro.scenarios.common import ScenarioEnv, standard_env
from repro.telemetry.report import render_figure
from repro.telemetry.series import TimeSeries
from repro.units import Gbps, KB, MB

__all__ = ["Fig8Result", "run_fig8"]


class Fig8Result:
    """Series + headline facts of the Figure 8 scenario."""

    def __init__(self, env: ScenarioEnv, series: List[TimeSeries],
                 file_bytes: int, upload_seconds: float,
                 net_in_peak_kbps: float, cpu_peak_pct: float,
                 disk_write_bursts: List[Tuple[float, float]],
                 bytes_written: float, double_write: bool):
        self.env = env
        self.series = series
        self.file_bytes = file_bytes
        self.upload_seconds = upload_seconds
        self.net_in_peak_kbps = net_in_peak_kbps
        self.cpu_peak_pct = cpu_peak_pct
        #: Distinct disk-write bursts (from the 1 s sampler).
        self.disk_write_bursts = disk_write_bursts
        self.bytes_written = bytes_written
        self.double_write = double_write

    def render(self) -> str:
        mode = "faithful double write" if self.double_write else \
            "improved single write (ablation)"
        lines = [render_figure(
            f"Figure 8 — upload + WS generation ({mode}) @ 3 s",
            self.series)]
        lines.append(f"file size           : {self.file_bytes / MB(1):.1f} MB")
        lines.append(f"form handling time  : {self.upload_seconds:.2f} s")
        lines.append(f"net-in peak         : {self.net_in_peak_kbps:.0f} KB/s")
        lines.append(f"CPU peak            : {self.cpu_peak_pct:.0f}%")
        lines.append(f"disk-write bursts   : {len(self.disk_write_bursts)} "
                     f"(paper: 2 — temp file, then database)")
        lines.append(f"total bytes written : {self.bytes_written:.0f} "
                     f"({self.bytes_written / self.file_bytes:.2f}x file size)")
        return "\n".join(lines)


def run_fig8(file_bytes: Optional[int] = None,
             lan_bandwidth: float = Gbps(1),
             double_write: bool = True,
             seed: int = 0) -> Fig8Result:
    """Run the Figure 8 scenario and return its result."""
    file_bytes = file_bytes or int(5 * MB(1))
    config = OnServeConfig(double_write=double_write)
    env = standard_env(config=config, lan_bandwidth=lan_bandwidth, seed=seed)
    tb, stack, sim = env.testbed, env.stack, env.sim

    from repro.workloads.executables import make_payload
    payload = make_payload("fixed", size=file_bytes, runtime="30")

    env.mark()
    written_before = tb.appliance_host.disk.bytes_written()
    t0 = sim.now
    sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "upload.bin", payload,
        description="figure 8 upload", params_spec="p1:string"))
    upload_seconds = sim.now - t0
    sim.run(until=sim.now + env.sampler.interval)

    # The two file writes happen well under a second apart on this
    # calibration, so resolve them from the disk's operation log rather
    # than a sampled series: count write operations moving a meaningful
    # fraction of the file.
    bursts = [(t, t) for (t, direction, nbytes)
              in tb.appliance_host.disk.op_log
              if direction == "write" and t >= env.t_start
              and nbytes >= 0.1 * file_bytes]

    net_in = env.sampler["net_in_kbps"].slice(env.t_start, sim.now)
    cpu = env.sampler["cpu_pct"].slice(env.t_start, sim.now)

    return Fig8Result(
        env=env,
        series=env.figure_series(),
        file_bytes=file_bytes,
        upload_seconds=upload_seconds,
        net_in_peak_kbps=net_in.max(),
        cpu_peak_pct=cpu.max(),
        disk_write_bursts=bursts,
        bytes_written=tb.appliance_host.disk.bytes_written() - written_before,
        double_write=double_write,
    )
