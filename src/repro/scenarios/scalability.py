"""§VIII.D scalability study: concurrent requests and bottlenecks.

Paper: "It is quite obvious that the solution's scalability is limited
either by the system's hard disk I/O-performance or its network
connection's performance.  The solution doesn't need a lot of CPU time
nor a lot of memory, even with multiple simultaneous requests."

The sweep runs N simultaneous requests (portal uploads or service
invocations) for growing N, on a slow-network or fast-network testbed,
and reports for each level the makespan, throughput and the utilization
of each appliance resource relative to its capacity — identifying the
bottleneck.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.scenarios.common import standard_env
from repro.units import KB, KBps, MB, Mbps
from repro.workloads.executables import make_payload

__all__ = ["ScalabilityResult", "run_scalability"]

#: Named network configurations for the study.
NETWORKS = {
    "slow": dict(appliance_uplink=KBps(85), lan_bandwidth=Mbps(10)),
    "fast": dict(appliance_uplink=Mbps(100), lan_bandwidth=Mbps(1000)),
}


class ScalabilityResult:
    """One sweep: rows of per-concurrency measurements."""

    def __init__(self, workload: str, network: str,
                 rows: List[Dict[str, float]]):
        self.workload = workload
        self.network = network
        self.rows = rows

    def bottleneck(self, row: Dict[str, float]) -> str:
        loads = {"network": row["net_load"], "disk": row["disk_load"],
                 "cpu": row["cpu_load"], "memory": row["mem_load"]}
        return max(loads, key=loads.get)

    def render(self) -> str:
        title = (f"Scalability (§VIII.D) — workload={self.workload}, "
                 f"network={self.network}")
        lines = [title, "=" * len(title),
                 f"{'N':>3} {'makespan(s)':>12} {'req/min':>8} "
                 f"{'cpu':>6} {'disk':>6} {'net':>6} {'mem':>6}  bottleneck"]
        for row in self.rows:
            lines.append(
                f"{row['n']:>3.0f} {row['makespan']:>12.1f} "
                f"{row['throughput']:>8.2f} "
                f"{100 * row['cpu_load']:>5.0f}% "
                f"{100 * row['disk_load']:>5.0f}% "
                f"{100 * row['net_load']:>5.0f}% "
                f"{100 * row['mem_load']:>5.0f}%  {self.bottleneck(row)}")
        return "\n".join(lines)


def run_scalability(workload: str = "upload",
                    network: str = "fast",
                    levels=(1, 2, 4, 8),
                    file_bytes: Optional[int] = None,
                    seed: int = 0) -> ScalabilityResult:
    """Sweep concurrency for one workload on one network config."""
    if workload not in ("upload", "invoke"):
        raise ValueError(f"unknown workload {workload!r}")
    if network not in NETWORKS:
        raise ValueError(f"unknown network {network!r}")
    file_bytes = file_bytes or int(2 * MB(1))
    rows = []
    for n in levels:
        rows.append(_one_level(workload, network, n, file_bytes, seed))
    return ScalabilityResult(workload, network, rows)


def _one_level(workload: str, network: str, n: int, file_bytes: int,
               seed: int) -> Dict[str, float]:
    config = OnServeConfig(poll_interval=9.0)
    env = standard_env(config=config, n_users=n, seed=seed,
                       **NETWORKS[network])
    tb, stack, sim = env.testbed, env.stack, env.sim
    host = tb.appliance_host

    if workload == "invoke":
        # Pre-publish one service per user so invocations are concurrent.
        for i in range(n):
            payload = make_payload("fixed", size=file_bytes, runtime="45",
                                   output_bytes=str(int(KB(4))))
            sim.run(until=stack.portal.upload_and_generate(
                tb.user_hosts[i], f"inv-{i:02d}.bin", payload))

    env.mark()
    busy0 = host.cpu.busy_core_seconds()
    disk0 = host.disk.bytes_read() + host.disk.bytes_written()
    net0 = host.net_bytes_in() + host.net_bytes_out()
    host.memory_peak = host.memory_used  # reset the high-water mark
    t0 = sim.now

    procs = []
    for i in range(n):
        if workload == "upload":
            payload = make_payload("fixed", size=file_bytes, runtime="45")
            procs.append(stack.portal.upload_and_generate(
                tb.user_hosts[i], f"up-{i:02d}.bin", payload))
        else:
            procs.append(discover_and_invoke(
                stack, stack.user_clients[i], f"Inv{i:02d}%"))
    sim.run(until=sim.all_of(procs))
    makespan = sim.now - t0

    # Mean loads over the busy window, relative to each capacity.
    cpu_load = ((host.cpu.busy_core_seconds() - busy0)
                / (host.cpu.cores * makespan))
    disk_bytes = (host.disk.bytes_read() + host.disk.bytes_written()) - disk0
    disk_load = disk_bytes / (host.disk.bandwidth * makespan)
    net_bytes = (host.net_bytes_in() + host.net_bytes_out()) - net0
    uplink = NETWORKS[network]["appliance_uplink"]
    lan = NETWORKS[network]["lan_bandwidth"]
    # The relevant pipe differs per workload: uploads arrive via LAN,
    # invocations push executables out via the uplink.
    pipe = lan if workload == "upload" else uplink
    net_load = net_bytes / (pipe * makespan)

    return {
        "n": float(n),
        "makespan": makespan,
        "throughput": 60.0 * n / makespan,
        "cpu_load": cpu_load,
        "disk_load": disk_load,
        "net_load": net_load,
        "mem_load": host.memory_peak / host.memory_bytes,
    }
