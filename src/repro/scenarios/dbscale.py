"""DBSCALE: the upload-storm-vs-invocation ablation (DB tier scale-out).

The seed's DB tier has the original's single-JDBC-connection shape: a
store holds the connection (and its transaction) across the whole
compress+write, and every fetch materializes the full BLOB in RAM.
Under a storm of concurrent ~100 MB re-uploads, invocations pay twice:
their row reads queue behind the writers' lock, and each fetch parks
O(blob) bytes on the appliance.

Three arms, same seed, fresh environment each (the serialized
connection model is on everywhere so the arms differ only in the
scale-out legs):

* **baseline** — no storm, optimizations off.  What an invocation
  costs when the DB tier is idle.
* **storm/locked** — upload storm, optimizations off.  Reads queue on
  the connection lock behind multi-second stores: the measured p95
  spike, with ``resident_peak`` = the whole BLOB per fetch.
* **storm/scaled** — the same storm with MVCC snapshot reads (fetches
  never touch the lock and see the last committed row), chunked BLOB
  streaming (peak resident payload <= 2 chunks), and WAL-shipping read
  replicas behind the bounded-staleness router (lease/metadata/notify
  reads leave the primary).

The acceptance bar (``DbScaleResult.ok``, CI's gate): every invocation
succeeds in every arm; the locked arm's p95 actually spikes (> 1.10x
baseline) while the scaled arm stays within 10% of the no-storm
baseline; every chunked fetch's ``resident_peak`` <= 2 chunk sizes
(whole fetches demonstrably park the full BLOB); and every replica
read observed ``behind <= lag_bound`` — the router's staleness guard.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.hardware.host import HostSpec
from repro.scenarios.common import standard_env
from repro.simkernel.events import Event
from repro.telemetry.events import bus
from repro.units import GB, MB, MBps
from repro.workloads.executables import make_payload

__all__ = ["DbScaleResult", "run_dbscale"]

EXECUTABLE = "dbscale.bin"
SERVICE_PATTERN = "Dbscale%"

#: Replica propagation lag modeled in the scaled arm (seconds).
REPLICA_LAG = 0.5


def _blob(size: int, runtime: float) -> bytes:
    """A *size*-byte fixed-runtime executable that compresses fast.

    Zero padding keeps zlib wall time CI-tractable at 100 MB while the
    simulated costs still scale with the uncompressed size.
    """
    header = make_payload("fixed", runtime=f"{runtime}",
                          output_bytes="1024")
    return header + b"\x00" * max(0, size - len(header))


def _percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class ArmResult:
    """One arm's measurements."""

    def __init__(self, label: str, n: int, n_ok: int,
                 latencies: List[float], fetches: List[Dict],
                 lock_waits: List[float], replica_reads: int,
                 primary_reads: int, max_behind: float,
                 behind_ok: bool, replica_rows: int):
        self.label = label
        self.n = n
        self.n_ok = n_ok
        self.latencies = latencies
        #: ``db.fetch`` event fields: mode / nbytes / chunks /
        #: resident_peak / waited.
        self.fetches = fetches
        self.lock_waits = lock_waits
        self.replica_reads = replica_reads
        self.primary_reads = primary_reads
        self.max_behind = max_behind
        #: Every ``db.replica.read`` satisfied ``behind <= lag_bound``.
        self.behind_ok = behind_ok
        #: Rows materialized across the replicas' tables.
        self.replica_rows = replica_rows

    @property
    def p95(self) -> float:
        return _percentile(self.latencies, 95.0)

    @property
    def mean(self) -> float:
        return sum(self.latencies) / len(self.latencies)

    @property
    def peak_resident(self) -> float:
        """Worst per-fetch resident payload bytes across the arm."""
        return max((f["resident_peak"] for f in self.fetches), default=0.0)

    @property
    def lock_wait_total(self) -> float:
        return sum(self.lock_waits)


class DbScaleResult:
    """The three-arm ablation, plus the gates CI enforces."""

    def __init__(self, blob_bytes: int, chunk_bytes: int,
                 baseline: ArmResult, locked: ArmResult,
                 scaled: ArmResult):
        self.blob_bytes = blob_bytes
        self.chunk_bytes = chunk_bytes
        self.baseline = baseline
        self.locked = locked
        self.scaled = scaled

    @property
    def spike_factor(self) -> float:
        """Storm p95 over no-storm p95 with the optimizations off."""
        return self.locked.p95 / self.baseline.p95

    @property
    def scaled_factor(self) -> float:
        """Storm p95 over no-storm p95 with the full scale-out tier."""
        return self.scaled.p95 / self.baseline.p95

    @property
    def ok(self) -> bool:
        arms = (self.baseline, self.locked, self.scaled)
        return (all(a.n_ok == a.n for a in arms)
                # The problem exists: reads queue behind the storm.
                and self.spike_factor > 1.10
                and self.locked.lock_wait_total > 0
                # The headline gate: with MVCC + replicas + chunking
                # the storm is invisible to invocation p95 (within 10%
                # of the no-storm baseline).
                and self.scaled_factor <= 1.10
                # Chunked streaming bounds per-fetch residency by two
                # chunk sizes; whole fetches park the entire BLOB.
                and self.scaled.peak_resident <= 2 * self.chunk_bytes
                and self.locked.peak_resident >= self.blob_bytes
                and all(f["mode"] == "chunked" for f in self.scaled.fetches)
                # Replicas actually serve reads, within the staleness
                # bound, and materialized the shipped rows.
                and self.scaled.replica_reads > 0
                and self.scaled.behind_ok
                and self.scaled.replica_rows > 0
                # The disabled arms never touch a replica.
                and self.baseline.replica_reads == 0
                and self.locked.replica_reads == 0)

    def render(self) -> str:
        title = (f"DB tier scale-out — upload storm vs invocation "
                 f"({self.blob_bytes / MB(1):.0f} MB BLOBs, "
                 f"{self.chunk_bytes / MB(1):.0f} MB chunks)")
        lines = [title, "=" * len(title),
                 f"{'arm':>14} {'ok':>5} {'p95 s':>8} {'mean s':>8} "
                 f"{'vs base':>8} {'lock wait s':>12} "
                 f"{'peak resident':>14} {'replica reads':>14}"]
        for arm, factor in ((self.baseline, 1.0),
                            (self.locked, self.spike_factor),
                            (self.scaled, self.scaled_factor)):
            lines.append(
                f"{arm.label:>14} {arm.n_ok}/{arm.n:>3} {arm.p95:>8.2f} "
                f"{arm.mean:>8.2f} {factor:>7.2f}x "
                f"{arm.lock_wait_total:>12.2f} "
                f"{arm.peak_resident / MB(1):>11.1f} MB "
                f"{arm.replica_reads:>14}")
        lines.append(
            f"scaled arm: max replica staleness {self.scaled.max_behind:.3f}s"
            f" (bound {REPLICA_LAG:.1f}s), replica rows "
            f"{self.scaled.replica_rows}, chunked fetches "
            f"{len(self.scaled.fetches)}")
        lines.append(f"gate: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _run_arm(label: str, *, storm: int, scaled: bool, blob_bytes: int,
             chunk_bytes: int, n: int, runtime: float,
             seed: int) -> ArmResult:
    """One fresh environment, one arm of the ablation."""
    config = OnServeConfig(
        notify=True, notify_sites=("ncsa", "sdsc"),
        db_serialize=True,
        db_mvcc=scaled,
        db_chunk_bytes=chunk_bytes if scaled else 0,
        db_replicas=2 if scaled else 0,
        db_replica_lag=REPLICA_LAG)
    # A roomy appliance: the arms must differ by lock queueing and
    # residency, not by CPU starvation on the 2-core default.
    env = standard_env(
        appliance_uplink=MBps(50), config=config, seed=seed,
        n_sites=2, nodes_per_site=4, cores_per_node=8, n_users=n + storm,
        appliance_spec=HostSpec(cores=8, disk_bandwidth=MBps(200),
                                memory_bytes=GB(8)))
    stack, sim = env.stack, env.sim
    telemetry = bus(sim)

    payload = _blob(blob_bytes, runtime)
    sim.run(until=stack.portal.upload_and_generate(
        env.testbed.user_hosts[0], EXECUTABLE, payload,
        description="dbscale ablation executable", params_spec=""))
    env.mark()

    latencies: List[float] = []
    n_ok = 0

    def invoke(i: int) -> Generator[Event, None, None]:
        nonlocal n_ok
        yield sim.timeout(1.5 * i, name=f"dbscale-stagger:{i}")
        t0 = sim.now
        out = yield discover_and_invoke(stack, stack.user_clients[i],
                                        SERVICE_PATTERN)
        latencies.append(sim.now - t0)
        if out.startswith("fixed-profile output"):
            n_ok += 1

    def upload(k: int) -> Generator[Event, None, None]:
        # Replacement re-uploads of the same name from dedicated
        # uploader hosts.  All uploaders fire together and queue on the
        # connection, so the lock stays busy through the invocation
        # window — the storm the locked arm's readers sit behind.
        yield sim.timeout(2.0, name=f"dbscale-storm:{k}")
        yield stack.portal.upload_and_generate(
            env.testbed.user_hosts[n + k], EXECUTABLE, payload,
            params_spec="")

    procs = [sim.process(invoke(i), name=f"dbscale-invoke:{i}")
             for i in range(n)]
    procs += [sim.process(upload(k), name=f"dbscale-upload:{k}")
              for k in range(storm)]
    sim.run(until=sim.all_of(procs))

    fetches = [dict(ev.fields) for ev in telemetry.events(kind="db.fetch")
               if ev.ts >= env.t_start]
    lock_waits = [ev.fields["waited"]
                  for ev in telemetry.events(kind="db.lock.wait")]
    reads = list(telemetry.events(kind="db.replica.read"))
    router = stack.dbmanager.read_router
    replica_rows = sum(
        replica.db.count(t)
        for replica in stack.dbmanager.replicas
        for t in replica.db.tables)
    return ArmResult(
        label=label, n=n, n_ok=n_ok, latencies=latencies,
        fetches=fetches, lock_waits=lock_waits,
        replica_reads=router.replica_reads if router else 0,
        primary_reads=router.primary_reads if router else 0,
        max_behind=max((ev.fields["behind"] for ev in reads), default=0.0),
        behind_ok=all(ev.fields["behind"] <= ev.fields["lag_bound"]
                      for ev in reads),
        replica_rows=replica_rows)


def run_dbscale(n: int = 8, seed: int = 0,
                smoke: bool = False) -> DbScaleResult:
    """Run the three-arm ablation; see the module docstring."""
    blob_bytes = int(MB(32)) if smoke else int(MB(100))
    chunk_bytes = int(MB(4)) if smoke else int(MB(4))
    if smoke:
        n = min(n, 4)
    storm = 3
    runtime = 4.0
    common = dict(blob_bytes=blob_bytes, chunk_bytes=chunk_bytes,
                  n=n, runtime=runtime, seed=seed)
    baseline = _run_arm("baseline", storm=0, scaled=False, **common)
    locked = _run_arm("storm/locked", storm=storm, scaled=False, **common)
    scaled = _run_arm("storm/scaled", storm=storm, scaled=True, **common)
    return DbScaleResult(blob_bytes=blob_bytes, chunk_bytes=chunk_bytes,
                         baseline=baseline, locked=locked, scaled=scaled)
