"""Command-line experiment runner: ``python -m repro.scenarios <exp>``.

Runs one (or all) of the paper-reproduction harnesses and prints the
rendered report — the same output the benchmarks save under
``benchmarks/reports/``.

Experiments: fig6, fig7, fig8, scalability, overhead, smallfiles,
bottleneck, faults, throughput, datapath, scaleout, controltower,
chaos, notify, dbscale, all.  ``--smoke`` shrinks the workloads that
support it (currently ``bottleneck``, ``faults``, ``throughput``,
``datapath``, ``scaleout``, ``controltower``, ``chaos``, ``notify``
and ``dbscale``) for fast CI validation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.scenarios import (
    run_bottleneck, run_chaos, run_controltower, run_datapath,
    run_dbscale, run_faults, run_fig6, run_fig7, run_fig8, run_notify,
    run_overhead, run_scalability, run_scaleout, run_smallfiles,
    run_throughput,
)
from repro.units import MB

#: Set by main() before dispatch; experiments read it where relevant.
_SMOKE = False


def _fig6() -> str:
    return run_fig6().render()


def _fig7() -> str:
    return run_fig7().render()


def _fig8() -> str:
    faithful = run_fig8()
    improved = run_fig8(double_write=False)
    return faithful.render() + "\n\n" + improved.render()


def _scalability() -> str:
    uploads = run_scalability(workload="upload", network="fast",
                              levels=(1, 2, 4, 8),
                              file_bytes=int(5 * MB(1)))
    invokes = run_scalability(workload="invoke", network="slow",
                              levels=(1, 2, 4))
    return uploads.render() + "\n\n" + invokes.render()


def _overhead() -> str:
    return run_overhead(runtimes=(10.0, 60.0, 300.0, 1800.0)).render()


def _smallfiles() -> str:
    return run_smallfiles(levels=(4, 8, 16)).render()


def _bottleneck() -> str:
    return run_bottleneck(smoke=_SMOKE).render()


def _faults() -> str:
    result = run_faults(smoke=_SMOKE)
    if not result.ok:
        # CI runs this experiment as its robustness gate: a broken
        # invariant must fail the job, not just print a FAIL row.
        print(result.render())
        raise SystemExit(1)
    return result.render()


def _throughput() -> str:
    return run_throughput(smoke=_SMOKE).render()


def _datapath() -> str:
    return run_datapath(smoke=_SMOKE).render()


def _scaleout() -> str:
    return run_scaleout(smoke=_SMOKE).render()


def _controltower() -> str:
    result = run_controltower(smoke=_SMOKE)
    if not _SMOKE and not result.ok:
        # The full run gates both control-plane claims: alert-leads-
        # breach ordering and hot-shard localization.
        print(result.render())
        raise SystemExit(1)
    return result.render()


def _chaos() -> str:
    result = run_chaos(smoke=_SMOKE)
    if not result.ok:
        # The drill's invariants (zero lost, no double execution,
        # bounded detection, rejoin, SLO held) are the robustness gate
        # for the self-healing plane: a miss must fail the job.
        print(result.render())
        raise SystemExit(1)
    return result.render()


def _dbscale() -> str:
    result = run_dbscale(smoke=_SMOKE)
    if not result.ok:
        # The DB-scale claims (storm-proof invocation p95, bounded
        # per-fetch residency, staleness-guarded replica reads) are
        # CI's gate for the scaled tier: a miss fails the job.
        print(result.render())
        raise SystemExit(1)
    return result.render()


def _notify() -> str:
    result = run_notify(smoke=_SMOKE)
    if not result.ok:
        # The push-path claims (near-zero detection lag, zero poller
        # exchanges on notify sites, drained durable queue) are CI's
        # gate for the event-driven lifecycle: a miss fails the job.
        print(result.render())
        raise SystemExit(1)
    return result.render()


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "scalability": _scalability,
    "overhead": _overhead,
    "smallfiles": _smallfiles,
    "bottleneck": _bottleneck,
    "faults": _faults,
    "throughput": _throughput,
    "datapath": _datapath,
    "scaleout": _scaleout,
    "controltower": _controltower,
    "chaos": _chaos,
    "notify": _notify,
    "dbscale": _dbscale,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Regenerate the paper's evaluation artefacts.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which experiment to run")
    parser.add_argument("--smoke", action="store_true",
                        help="shrink supported workloads for fast CI runs")
    args = parser.parse_args(argv)
    global _SMOKE
    _SMOKE = args.smoke
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for i, name in enumerate(names):
        if i:
            print()
        print(EXPERIMENTS[name]())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
