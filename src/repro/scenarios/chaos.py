"""Chaos drill: kill replicas at peak load, lose nothing.

The self-healing contract (DESIGN.md §13) in one experiment: a routed
fabric of N stateless replicas runs a closed-loop client population,
and at the traffic peak the fault plane fail-stops ``kill`` of them —
heartbeats stop, in-flight requests die mid-exchange, new connections
are refused.  Later one of the corpses is restarted and must rejoin the
ring.  The drill holds the fabric to four invariants:

* **zero lost requests** — every client invocation completes; crashed
  in-flight work fails over to a preference-list survivor under the
  invocation-dedup layer (no double execution: the store's duplicate
  counter must stay 0);
* **bounded detection** — for every crash, the gap between the crash
  instant (``fabric.replica_crash``) and the router's death declaration
  (``router.replica_dead``) is at most ``lease_ttl +
  2 * lease_check_interval`` — the slow path's worst case; the
  transport-fault fast path usually beats it by an order of magnitude;
* **availability SLO held** — a :class:`~repro.telemetry.slo.SloSpec`
  availability objective over the whole run must not be violated;
* **restart rejoins** — the restarted replica is back in the routing
  set at the end of the run.

The drill runs twice: a *calibration* pass with no faults measures the
workload's natural span, then the *chaos* pass places the crash windows
at fixed fractions of it, so "at peak" stays true across parameter
changes.  Both passes are fully seeded — crash instants draw from the
``fault:replica.crash:<target>`` RNG streams — so the whole drill is
deterministic.  ``smoke=True`` shrinks the drill for CI.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.fabric import deploy_fabric
from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.errors import root_cause_name
from repro.faults import FaultSpec, fault_plane
from repro.grid.testbed import build_testbed
from repro.simkernel.events import Event
from repro.simkernel.kernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.slo import SloSpec
from repro.units import KB
from repro.workloads.executables import make_payload

__all__ = ["ChaosResult", "run_chaos"]

#: Crash windows, as (start, end) fractions of the calibrated span —
#: the k-th killed replica dies somewhere inside the k-th window.
CRASH_WINDOWS = ((0.25, 0.35), (0.42, 0.52), (0.56, 0.64))

#: Restart instant, as a fraction of the calibrated span (after every
#: crash window has closed).
RESTART_AT = 0.72


class ChaosResult:
    """One chaos drill: workload numbers + the four invariants."""

    def __init__(self, *, replicas: int, clients: int, services: int,
                 rounds: int, kill: int, restart: int,
                 invocations: int, losses: List[Tuple[int, str]],
                 latencies: List[float], elapsed: float,
                 calibration_elapsed: float,
                 crashed: List[str], restarted: List[str],
                 rejoined: bool, detection_lags: Dict[str, float],
                 detection_bound: float, slo_violated: bool,
                 failovers: int, dedup_hits: int, dedup_duplicates: int,
                 inflight_killed: int, requests_routed: int,
                 seed: int, smoke: bool):
        self.replicas = replicas
        self.clients = clients
        self.services = services
        self.rounds = rounds
        self.kill = kill
        self.restart = restart
        self.invocations = invocations
        #: (client index, root cause) of every invocation that failed.
        self.losses = losses
        self.latencies = latencies
        self.elapsed = elapsed
        self.calibration_elapsed = calibration_elapsed
        self.crashed = crashed
        self.restarted = restarted
        self.rejoined = rejoined
        #: replica -> seconds from crash to the router's declaration.
        self.detection_lags = detection_lags
        self.detection_bound = detection_bound
        self.slo_violated = slo_violated
        self.failovers = failovers
        self.dedup_hits = dedup_hits
        self.dedup_duplicates = dedup_duplicates
        self.inflight_killed = inflight_killed
        self.requests_routed = requests_routed
        self.seed = seed
        self.smoke = smoke

    @property
    def lost(self) -> int:
        return len(self.losses)

    @property
    def completed(self) -> int:
        return self.invocations - self.lost

    @property
    def availability(self) -> float:
        return self.completed / self.invocations if self.invocations else 1.0

    @property
    def max_detection_lag(self) -> float:
        return max(self.detection_lags.values(), default=0.0)

    @property
    def detection_ok(self) -> bool:
        """Every crash was declared, within the lease-path worst case."""
        return (len(self.detection_lags) == len(self.crashed)
                and all(lag <= self.detection_bound
                        for lag in self.detection_lags.values()))

    @property
    def ok(self) -> bool:
        return (self.lost == 0
                and self.dedup_duplicates == 0
                and len(self.crashed) == self.kill
                and self.detection_ok
                and self.rejoined
                and not self.slo_violated)

    def render(self) -> str:
        title = (f"Chaos drill — kill {self.kill} of {self.replicas} "
                 f"replicas at peak, restart {self.restart}")
        if self.smoke:
            title += " (smoke)"
        mean = (sum(self.latencies) / len(self.latencies)
                if self.latencies else 0.0)
        gate = [
            ("zero lost requests",
             self.lost == 0,
             f"{self.completed}/{self.invocations} completed"),
            ("no double execution",
             self.dedup_duplicates == 0,
             f"{self.dedup_hits} dedup hits, "
             f"{self.dedup_duplicates} duplicates"),
            ("detection lag bounded",
             self.detection_ok,
             f"max {self.max_detection_lag:.1f}s "
             f"<= {self.detection_bound:.1f}s over "
             f"{len(self.detection_lags)} crash(es)"),
            ("restart rejoined",
             self.rejoined,
             ", ".join(self.restarted) or "none"),
            ("availability SLO held",
             not self.slo_violated,
             f"{100 * self.availability:.2f}% invocations good"),
        ]
        lines = [title, "=" * len(title),
                 f"workload: {self.clients} clients x {self.rounds} "
                 f"rounds over {self.services} services; "
                 f"{self.requests_routed} routed requests",
                 f"span: calibration {self.calibration_elapsed:.1f}s -> "
                 f"chaos {self.elapsed:.1f}s; mean invocation "
                 f"{mean:.1f}s",
                 f"crashes: {', '.join(self.crashed) or 'none'} "
                 f"({self.inflight_killed} in-flight killed, "
                 f"{self.failovers} failovers)",
                 "-" * len(title)]
        for name, held, note in gate:
            lines.append(f"  {'PASS' if held else 'FAIL'}  {name:<24} "
                         f"{note}")
        lines.append("-" * len(title))
        lines.append(f"{'ALL INVARIANTS HOLD' if self.ok else 'DRILL FAILED'}"
                     f" (seed {self.seed})")
        return "\n".join(lines)


def run_chaos(replicas: int = 8,
              clients: Optional[int] = None,
              services: Optional[int] = None,
              rounds: Optional[int] = None,
              file_bytes: Optional[int] = None,
              runtime: str = "4",
              kill: int = 2,
              restart: int = 1,
              lease_ttl: float = 12.0,
              lease_check_interval: float = 3.0,
              fault_threshold: int = 2,
              seed: int = 0,
              smoke: bool = False) -> ChaosResult:
    """Run the chaos drill (calibration pass + chaos pass)."""
    if smoke:
        replicas = min(replicas, 3)
        kill, restart = 1, 1
        clients = 6 if clients is None else clients
        services = 3 if services is None else services
        rounds = 2 if rounds is None else rounds
        file_bytes = int(KB(64)) if file_bytes is None else file_bytes
        runtime = "3"
    clients = 48 if clients is None else clients
    services = 8 if services is None else services
    rounds = 3 if rounds is None else rounds
    file_bytes = int(KB(128)) if file_bytes is None else file_bytes
    if kill < 1 or kill >= replicas:
        raise ValueError("kill must be in [1, replicas)")
    if not 0 <= restart <= kill:
        raise ValueError("restart must be in [0, kill]")
    if kill > len(CRASH_WINDOWS):
        raise ValueError(f"at most {len(CRASH_WINDOWS)} crash windows "
                         f"are defined")

    calibration = _one_run(replicas, clients, services, rounds, file_bytes,
                           runtime, lease_ttl, lease_check_interval,
                           fault_threshold, seed, kill=0, restart=0,
                           span=None)
    chaos = _one_run(replicas, clients, services, rounds, file_bytes,
                     runtime, lease_ttl, lease_check_interval,
                     fault_threshold, seed, kill=kill, restart=restart,
                     span=calibration["elapsed"])
    return ChaosResult(
        replicas=replicas, clients=clients, services=services,
        rounds=rounds, kill=kill, restart=restart,
        invocations=chaos["invocations"], losses=chaos["losses"],
        latencies=chaos["latencies"], elapsed=chaos["elapsed"],
        calibration_elapsed=calibration["elapsed"],
        crashed=chaos["crashed"], restarted=chaos["restarted"],
        rejoined=chaos["rejoined"],
        detection_lags=chaos["detection_lags"],
        detection_bound=lease_ttl + 2 * lease_check_interval,
        slo_violated=chaos["slo_violated"],
        failovers=chaos["failovers"], dedup_hits=chaos["dedup_hits"],
        dedup_duplicates=chaos["dedup_duplicates"],
        inflight_killed=chaos["inflight_killed"],
        requests_routed=chaos["requests_routed"],
        seed=seed, smoke=smoke)


def _one_run(replicas: int, clients: int, services: int, rounds: int,
             file_bytes: int, runtime: str, lease_ttl: float,
             lease_check_interval: float, fault_threshold: int,
             seed: int, kill: int, restart: int,
             span: Optional[float]) -> Dict[str, object]:
    """One full pass; ``kill=0`` is the fault-free calibration."""
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim=sim, n_sites=4, nodes_per_site=4,
                            cores_per_node=8, n_users=clients)
    stack = sim.run(until=deploy_fabric(
        testbed, OnServeConfig(), replicas=replicas,
        self_healing=True, lease_ttl=lease_ttl,
        lease_check_interval=lease_check_interval,
        fault_threshold=fault_threshold))
    tower = stack.attach_control_tower(specs=[SloSpec(
        "chaos-availability", availability=0.90,
        compliance_window=10_000_000.0, min_samples=10)])
    telemetry = bus(sim)

    payload = make_payload("fixed", size=file_bytes, runtime=runtime,
                           output_bytes=str(int(KB(4))))
    for j in range(services):
        sim.run(until=stack.portal.upload_and_generate(
            testbed.user_hosts[0], f"chaos{j:02d}.bin", payload))

    t0 = sim.now
    latencies: List[float] = []
    losses: List[Tuple[int, str]] = []

    targets: List[str] = []
    restarted: List[str] = []
    extra_procs = []
    if kill:
        # Kill non-primary replicas (the shared DB tier rides the
        # primary host, and the drill is about the SOAP plane).
        primary = stack.onserves[0].replica
        targets = [name for name in stack.router.replicas()
                   if name != primary][:kill]
        specs = []
        for name, (lo, hi) in zip(targets, CRASH_WINDOWS):
            specs.append(FaultSpec("replica.crash", target=name,
                                   window=(t0 + lo * span, t0 + hi * span)))
        fault_plane(sim).configure(specs).install_fabric(stack)
        restarted = targets[:restart]

        def restarter() -> Generator[Event, None, None]:
            yield sim.timeout(t0 + RESTART_AT * span - sim.now,
                              name="chaos:restart")
            for name in restarted:
                stack.restart_replica(name)

        if restarted:
            extra_procs.append(sim.process(restarter(),
                                           name="chaos:restarter"))

    def worker(i: int) -> Generator[Event, None, None]:
        client = stack.user_clients[i]
        pattern = f"Chaos{i % services:02d}%"
        for _ in range(rounds):
            t_req = sim.now
            try:
                yield discover_and_invoke(stack, client, pattern)
            except Exception as exc:
                losses.append((i, root_cause_name(exc)))
            else:
                latencies.append(sim.now - t_req)

    procs = [sim.process(worker(i), name=f"client:{i}")
             for i in range(clients)]
    sim.run(until=sim.all_of(procs + extra_procs))
    elapsed = sim.now - t0

    crash_ts = {ev.get("replica"): ev.ts
                for ev in telemetry.events("fabric.replica_crash")}
    dead_ts = {}
    for ev in telemetry.events("router.replica_dead"):
        dead_ts.setdefault(ev.get("replica"), ev.ts)
    detection_lags = {name: dead_ts[name] - ts
                      for name, ts in crash_ts.items() if name in dead_ts}
    slo_violated = (tower.slo is not None and tower.slo.objective(
        "chaos-availability", "availability").violated)
    inflight_killed = sum(ev.get("inflight_killed", 0)
                          for ev in telemetry.events("fabric.replica_crash"))
    rejoined = all(name in stack.router.replicas() for name in restarted)

    tower.close()
    stack.stop_self_healing()
    return {
        "invocations": clients * rounds,
        "losses": losses,
        "latencies": latencies,
        "elapsed": elapsed,
        "crashed": sorted(crash_ts),
        "restarted": restarted,
        "rejoined": rejoined,
        "detection_lags": detection_lags,
        "slo_violated": slo_violated,
        "failovers": stack.router.failovers,
        "dedup_hits": stack.router.dedup_hits,
        "dedup_duplicates": stack.store.dedup_duplicates,
        "inflight_killed": inflight_killed,
        "requests_routed": stack.router.requests_routed,
    }
