"""§VIII.B many-small-files claim.

Paper: "Finally, the provided solution is quite good in a scenario using
a lot of relatively small files.  The network limitation doesn't play a
huge role in this case and K-GRAM permits to submit a large number of
jobs quite efficiently."

The harness uploads N small executables, invokes each one, and reports
the sustained submission/completion rate as N grows — per-job cost
should stay flat (amortization), in contrast to the large-file scenario
where the network dominates.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.cyberaide.mediator import Mediator
from repro.scenarios.common import standard_env
from repro.units import KB, KBps, MB
from repro.workloads.executables import make_payload
from repro.workloads.generator import WorkloadSpec, make_workload

__all__ = ["SmallFilesResult", "run_smallfiles"]


class SmallFilesResult:
    """Rows of per-N measurements plus the large-file contrast row."""

    def __init__(self, rows: List[Dict[str, float]],
                 large_file_row: Dict[str, float]):
        self.rows = rows
        self.large_file_row = large_file_row

    def render(self) -> str:
        title = "Many small files (§VIII.B)"
        lines = [title, "=" * len(title),
                 f"{'jobs':>5} {'makespan(s)':>12} {'jobs/min':>9} "
                 f"{'s/job':>7}"]
        for row in self.rows:
            lines.append(f"{row['n']:>5.0f} {row['makespan']:>12.1f} "
                         f"{row['rate']:>9.2f} {row['per_job']:>7.2f}")
        big = self.large_file_row
        lines.append(f"large-file contrast (1 x 5 MB): "
                     f"{big['makespan']:.1f} s/job "
                     f"vs {self.rows[-1]['per_job']:.1f} s/job small")
        return "\n".join(lines)


def run_smallfiles(levels=(4, 8, 16),
                   runtime: float = 20.0,
                   concurrency: int = 4,
                   seed: int = 0) -> SmallFilesResult:
    """Sweep the number of small jobs; add one large-file contrast run."""
    rows = [_run_level(n, runtime, concurrency, seed) for n in levels]
    large = _run_large(runtime, seed)
    return SmallFilesResult(rows, large)


def _run_level(n: int, runtime: float, concurrency: int,
               seed: int) -> Dict[str, float]:
    env = standard_env(appliance_uplink=KBps(300), seed=seed,
                       config=OnServeConfig(poll_interval=9.0))
    tb, stack, sim = env.testbed, env.stack, env.sim
    uploads = make_workload(WorkloadSpec(kind="small", count=n,
                                         runtime=runtime, seed=seed))
    for name, payload, description, params in uploads:
        sim.run(until=stack.portal.upload_and_generate(
            tb.user_hosts[0], name, payload, description=description))

    env.mark()
    t0 = sim.now
    mediator = Mediator(sim, max_concurrent=concurrency)
    client = stack.user_clients[0]
    for name, _, _, _ in uploads:
        pattern = _pattern_for(name)

        def factory(pattern=pattern):
            def run():
                result = yield discover_and_invoke(stack, client, pattern)
                return result
            return run()

        mediator.submit(factory, label=pattern)
    sim.run(until=mediator.wait_all())
    stats = mediator.stats()
    assert stats["failed"] == 0, f"jobs failed: {stats}"
    makespan = sim.now - t0
    return {"n": float(n), "makespan": makespan,
            "rate": 60.0 * n / makespan, "per_job": makespan / n}


def _run_large(runtime: float, seed: int) -> Dict[str, float]:
    env = standard_env(appliance_uplink=KBps(300), seed=seed,
                       config=OnServeConfig(poll_interval=9.0))
    tb, stack, sim = env.testbed, env.stack, env.sim
    payload = make_payload("fixed", size=int(5 * MB(1)),
                           runtime=f"{runtime}")
    sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "big.bin", payload))
    t0 = sim.now
    sim.run(until=discover_and_invoke(stack, stack.user_clients[0], "Big%"))
    return {"makespan": sim.now - t0}


def _pattern_for(executable_name: str) -> str:
    from repro.core.datastructures import service_name_for
    return service_name_for(executable_name)
