"""Figure 7: Web service execution with a ~5 MB file.

Paper (§VIII.B): "By replacing the small file used in the test before
with a much larger file (~5MB), the bandwidth limitation becomes
visible. ... The first blue peak indicates the moment the file is
written temporarily to the hard disk.  Clearly, the hard disk is not the
limiting factor in this test, but the network bandwidth is.  It takes
about 60 seconds to upload the file to the Grid node.  The transfer rate
is almost constant all the time at about 80 to 90 KB/s."
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.scenarios.common import ScenarioEnv, standard_env
from repro.telemetry.report import render_figure
from repro.telemetry.series import TimeSeries
from repro.units import KB, KBps, MB
from repro.workloads.executables import make_payload

__all__ = ["Fig7Result", "run_fig7"]


class Fig7Result:
    """Series + headline facts of the Figure 7 scenario."""

    def __init__(self, env: ScenarioEnv, series: List[TimeSeries],
                 file_bytes: int, upload_seconds: float,
                 plateau: List[Tuple[float, float]],
                 plateau_rate_kbps: float, polls: int,
                 invocation_total: float):
        self.env = env
        self.series = series
        self.file_bytes = file_bytes
        self.upload_seconds = upload_seconds
        #: Intervals where net-out sits in the plateau band.
        self.plateau = plateau
        self.plateau_rate_kbps = plateau_rate_kbps
        self.polls = polls
        self.invocation_total = invocation_total

    def render(self) -> str:
        lines = [render_figure(
            "Figure 7 — WS execution, ~5 MB file "
            "(network + disk I/O @ 3 s)", self.series)]
        lines.append(f"file size              : {self.file_bytes / MB(1):.1f} MB")
        lines.append(f"grid upload time       : {self.upload_seconds:.1f} s "
                     f"(paper: ~60 s)")
        lines.append(f"plateau transfer rate  : "
                     f"{self.plateau_rate_kbps:.0f} KB/s (paper: 80-90)")
        lines.append(f"tentative output polls : {self.polls}")
        return "\n".join(lines)


def run_fig7(file_bytes: Optional[int] = None,
             runtime_seconds: float = 90.0,
             poll_interval: float = 9.0,
             appliance_uplink: float = KBps(85),
             seed: int = 0) -> Fig7Result:
    """Run the Figure 7 scenario and return its result."""
    file_bytes = file_bytes or int(5 * MB(1))
    config = OnServeConfig(poll_interval=poll_interval)
    env = standard_env(appliance_uplink=appliance_uplink, config=config,
                       seed=seed)
    tb, stack, sim = env.testbed, env.stack, env.sim

    payload = make_payload("fixed", size=file_bytes,
                           runtime=f"{runtime_seconds}",
                           output_bytes=str(int(KB(8))))
    sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "bigfile.bin", payload,
        description="figure 7 large executable", params_spec=""))

    env.mark()
    t0 = sim.now
    sim.run(until=discover_and_invoke(stack, stack.user_clients[0], "Bigfile%"))
    invocation_total = sim.now - t0
    sim.run(until=sim.now + env.sampler.interval)

    report = stack.onserve.runtimes["BigfileService"].reports[-1]

    # Plateau detection on the appliance's outbound rate.
    uplink_kbps = appliance_uplink / KB(1)
    net_out = env.sampler["net_out_kbps"].slice(env.t_start, sim.now)
    plateau = net_out.plateau(0.8 * uplink_kbps, 1.2 * uplink_kbps,
                              min_duration=3 * 3.0)
    in_band = [v for v in net_out.values
               if 0.8 * uplink_kbps <= v <= 1.2 * uplink_kbps]
    plateau_rate = sum(in_band) / len(in_band) if in_band else 0.0

    return Fig7Result(
        env=env,
        series=env.figure_series(metrics=("net_in_kbps", "net_out_kbps",
                                          "disk_read_kbps",
                                          "disk_write_kbps")),
        file_bytes=file_bytes,
        upload_seconds=report.upload,
        plateau=plateau,
        plateau_rate_kbps=plateau_rate,
        polls=report.polls,
        invocation_total=invocation_total,
    )
