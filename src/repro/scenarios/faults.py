"""Fault matrix: every injectable failure mode × its recovery invariant.

The paper deploys onServe on a *production* grid (§VIII.A) where sites
really do refuse jobs, data channels really do abort, and proxies
really do expire.  This scenario drives the §VII.B execute workflow
through each failure mode the fault plane can arm
(:data:`~repro.faults.spec.FAULT_KINDS`) and checks the middleware's
resilience contract case by case:

* **recovery** — the request either completes within its deadline
  (after retry / backoff / circuit-breaking / site failover), or fails
  with the *correct* typed error for that fault;
* **hygiene** — after the run the simulation drains to an empty event
  queue and no process started by the workload is still alive (no
  orphaned pollers, no leaked retry timers);
* **determinism** — every case is executed twice from the same seed and
  the two resilience traces (``fault.injected`` / ``retry.attempt`` /
  ``breaker.transition`` / ``core.failover`` events, timestamps and
  payloads included) must be identical.

``smoke=True`` runs a representative subset for CI.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.context import RequestContext
from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.errors import root_cause_name
from repro.faults import FaultSpec
from repro.scenarios.common import ScenarioEnv, standard_env
from repro.telemetry.events import bus
from repro.units import KB, MBps
from repro.workloads.executables import make_payload

__all__ = ["FaultCase", "CaseOutcome", "FaultsResult", "run_faults",
           "FAULT_CASES", "SMOKE_CASES", "RESILIENCE_KINDS"]

#: The event kinds whose run-twice equality defines "deterministic".
RESILIENCE_KINDS = ("fault.injected", "retry.attempt",
                    "breaker.transition", "core.failover")

#: Middleware knobs shared by every case: tight poll/backoff timings so
#: the matrix runs fast, and a breaker reset long enough that an opened
#: circuit stays open for the rest of the case.
_BASE_CONFIG = dict(poll_interval=2.0, watchdog_timeout=180.0,
                    retry_base_delay=1.0, retry_max_delay=4.0,
                    breaker_reset_timeout=3600.0)

#: With ``n_sites=3`` the testbed hosts ncsa/sdsc/anl; the round-robin
#: policy walks the *sorted* names, so "anl" is always the first pick —
#: which is how site-targeted cases are made deterministic.
_FIRST_RR_SITE = "anl"


class FaultCase:
    """One cell of the matrix: a fault to arm + the invariant to check."""

    __slots__ = ("name", "description", "specs", "config", "expected",
                 "inject_early", "runtime", "deadline", "invocations",
                 "min_counts")

    def __init__(self, name: str, description: str,
                 specs: Callable[[ScenarioEnv], List[FaultSpec]],
                 config: Optional[Dict[str, object]] = None,
                 expected: Optional[str] = None,
                 inject_early: bool = False,
                 runtime: float = 4.0,
                 deadline: float = 600.0,
                 invocations: int = 1,
                 min_counts: Optional[Dict[str, int]] = None):
        self.name = name
        self.description = description
        #: Fresh specs per run (``fires`` counters are mutable state).
        self.specs = specs
        #: :class:`OnServeConfig` overrides on top of ``_BASE_CONFIG``.
        self.config = dict(config or {})
        #: ``None`` — must recover; else the required root-cause name.
        self.expected = expected
        #: Install the faults *before* upload/generate (DB-phase cases).
        self.inject_early = inject_early
        self.runtime = runtime
        self.deadline = deadline
        #: Sequential invocations; the invariant applies to the last.
        self.invocations = invocations
        #: Per-event-kind minimum counts the run must have produced.
        self.min_counts = dict(min_counts or {})

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        want = "recover" if self.expected is None else self.expected
        return f"<FaultCase {self.name} -> {want}>"


FAULT_CASES: Tuple[FaultCase, ...] = (
    FaultCase(
        "gridftp-abort-recovers",
        "one mid-transfer abort; the upload retry succeeds in place",
        lambda env: [FaultSpec("gridftp.abort", max_fires=1)],
        min_counts={"fault.injected": 1, "retry.attempt": 1}),
    FaultCase(
        "gridftp-degrade-stall",
        "a degraded data channel stalls the transfer, then completes",
        lambda env: [FaultSpec("gridftp.degrade", duration=8.0,
                               max_fires=1)],
        min_counts={"fault.injected": 1}),
    FaultCase(
        "gram-refuse-retry",
        "one transient LRM rejection; backoff (with jitter) resubmits",
        lambda env: [FaultSpec("gram.refuse", max_fires=1)],
        config={"retry_jitter": 0.2},
        min_counts={"fault.injected": 1, "retry.attempt": 1}),
    FaultCase(
        "gram-lost-job-failover",
        "the LRM accepts then drops the job; polling surfaces "
        "JobNotFound and the invocation fails over to another site",
        lambda env: [FaultSpec("gram.lost_job", max_fires=1)],
        config={"status_supported": True},
        min_counts={"fault.injected": 1, "core.failover": 1,
                    "breaker.transition": 0}),
    FaultCase(
        "site-outage-failover",
        "the first-choice site is down for the whole run; staging "
        "fails there and the work lands on the next site",
        lambda env: [FaultSpec("site.outage", target=_FIRST_RR_SITE,
                               window=(0.0, 1e9))],
        config={"site_policy": "round_robin"},
        min_counts={"fault.injected": 1, "retry.attempt": 1,
                    "core.failover": 1}),
    FaultCase(
        "node-crash-resubmit",
        "a compute node dies mid-job; status polling sees the failed "
        "job and the invocation is resubmitted on another site",
        lambda env: [FaultSpec("node.crash", target=_FIRST_RR_SITE,
                               at=env.sim.now + 15.0)],
        config={"status_supported": True, "site_policy": "round_robin"},
        runtime=30.0,
        min_counts={"fault.injected": 1, "core.failover": 1}),
    FaultCase(
        "credential-expired-reauth",
        "the delegated proxy is invalidated mid-session; the retry "
        "hook re-authenticates through MyProxy",
        lambda env: [FaultSpec("security.credential_expired",
                               max_fires=1)],
        min_counts={"fault.injected": 1, "retry.attempt": 1}),
    FaultCase(
        "db-stall",
        "the embedded DB stalls once while storing the executable",
        lambda env: [FaultSpec("db.stall", duration=5.0, max_fires=1)],
        inject_early=True,
        min_counts={"fault.injected": 1}),
    FaultCase(
        "db-txn-error",
        "one aborted commit while storing; the store retry succeeds",
        lambda env: [FaultSpec("db.txn_error", max_fires=1)],
        inject_early=True,
        min_counts={"fault.injected": 1, "retry.attempt": 1}),
    FaultCase(
        "gram-refuse-permanent",
        "every gatekeeper refuses every submit; retries and failover "
        "exhaust and the typed SubmissionRefused surfaces",
        lambda env: [FaultSpec("gram.refuse")],
        expected="SubmissionRefused",
        min_counts={"retry.attempt": 2, "core.failover": 2}),
    FaultCase(
        "outage-all-sites",
        "the whole grid is down; staging fails everywhere and the "
        "typed TransferError surfaces",
        lambda env: [FaultSpec("site.outage", window=(0.0, 1e9))],
        expected="TransferError",
        min_counts={"core.failover": 2}),
    FaultCase(
        "breaker-fail-fast",
        "refusals open every site's breaker; the next invocation "
        "fails fast instead of queueing behind a broken grid",
        lambda env: [FaultSpec("gram.refuse")],
        config={"breaker_failure_threshold": 1, "retry_max_attempts": 1},
        expected="InvocationError",
        invocations=2,
        min_counts={"breaker.transition": 3}),
)

#: The CI subset: one retry-in-place, one jittered retry, one DB-phase
#: retry, one failover and one breaker case.
SMOKE_CASES = ("gridftp-abort-recovers", "gram-refuse-retry",
               "db-txn-error", "site-outage-failover",
               "breaker-fail-fast")


class CaseOutcome:
    """What one matrix cell actually did, checked against its contract."""

    __slots__ = ("name", "expected", "recovered", "root_cause", "roots",
                 "elapsed", "within_deadline", "injected", "counts",
                 "orphans", "drained", "drain_note", "deterministic",
                 "passed")

    def __init__(self, case: FaultCase, first: Dict[str, object],
                 deterministic: bool):
        self.name = case.name
        self.expected = case.expected
        self.recovered = first["recovered"]
        self.root_cause = first["root_cause"]
        self.roots = first["roots"]
        self.elapsed = first["elapsed"]
        self.within_deadline = first["within_deadline"]
        self.injected = first["injected"]
        self.counts = first["counts"]
        self.orphans = first["orphans"]
        self.drained = first["drained"]
        self.drain_note = first["drain_note"]
        self.deterministic = deterministic
        self.passed = self._check(case)

    def _check(self, case: FaultCase) -> bool:
        if case.expected is None:
            ok = self.recovered and self.within_deadline
        else:
            ok = (not self.recovered
                  and self.root_cause == case.expected)
        ok = ok and self.drained and not self.orphans
        ok = ok and self.deterministic
        for kind, floor in case.min_counts.items():
            ok = ok and self.counts.get(kind, 0) >= floor
        return ok

    @property
    def verdict(self) -> str:
        if self.recovered:
            return "recovered"
        return f"failed:{self.root_cause}"


class FaultsResult:
    """The whole matrix, rendered like the other scenario reports."""

    def __init__(self, outcomes: List[CaseOutcome], seed: int,
                 smoke: bool):
        self.outcomes = outcomes
        self.seed = seed
        self.smoke = smoke

    @property
    def ok(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    def outcome(self, name: str) -> CaseOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    def render(self) -> str:
        title = "Fault matrix — deterministic injection x recovery"
        if self.smoke:
            title += " (smoke subset)"
        lines = [title, "=" * 76,
                 f"{'case':<26} {'verdict':<25} {'s':>7} "
                 f"{'inj':>4} {'ret':>4} {'fo':>3}  det  result",
                 "-" * 76]
        for o in self.outcomes:
            lines.append(
                f"{o.name:<26} {o.verdict:<25} {o.elapsed:>7.1f} "
                f"{o.injected:>4} {o.counts.get('retry.attempt', 0):>4} "
                f"{o.counts.get('core.failover', 0):>3}  "
                f"{'yes' if o.deterministic else 'NO '}  "
                f"{'PASS' if o.passed else 'FAIL'}")
            if not o.passed:
                lines.append(f"  expected: "
                             f"{o.expected or 'recovery in deadline'}; "
                             f"orphans={o.orphans or 'none'}; "
                             f"drained={o.drained} {o.drain_note}")
        lines.append("-" * 76)
        held = sum(1 for o in self.outcomes if o.passed)
        lines.append(f"{held}/{len(self.outcomes)} invariants hold "
                     f"(seed {self.seed}); every case run twice and "
                     f"trace-compared")
        return "\n".join(lines)


# ---------------------------------------------------------------- driver

def _drain(sim, max_steps: int = 500_000) -> Tuple[bool, str]:
    """Run the queue to exhaustion; report if it would not empty."""
    steps = 0
    try:
        while sim.peek() != float("inf"):
            if steps >= max_steps:
                return False, f"(queue not empty after {max_steps} steps)"
            sim.step()
            steps += 1
    except Exception as exc:  # a leaked un-defused failure is itself a leak
        return False, f"({type(exc).__name__}: {exc})"
    return True, ""


def _run_once(case: FaultCase, seed: int) -> Dict[str, object]:
    """Build a fresh testbed, arm the case's faults, run the workload."""
    config = OnServeConfig(**{**_BASE_CONFIG, **case.config})
    env = standard_env(appliance_uplink=MBps(2), config=config, seed=seed,
                       n_sites=3, nodes_per_site=2, cores_per_node=4)
    tb, stack, sim = env.testbed, env.stack, env.sim
    payload = make_payload("fixed", size=int(64 * KB(1)),
                           runtime=f"{case.runtime}",
                           output_bytes=str(int(KB(2))))

    # Track every process the workload starts, so the epilogue can
    # assert none is still alive (orphaned pollers, leaked timers).
    started = []
    kernel_process = sim.process

    def tracked_process(generator, name: str = ""):
        proc = kernel_process(generator, name=name)
        started.append(proc)
        return proc

    sim.process = tracked_process  # type: ignore[method-assign]
    recovered, root, roots = False, "", []
    deadline_at = 0.0
    started_at = 0.0
    try:
        if case.inject_early:
            tb.install_faults(case.specs(env))
        sim.run(until=stack.portal.upload_and_generate(
            tb.user_hosts[0], "faulty.bin", payload,
            description="fault-matrix probe"))
        if not case.inject_early:
            tb.install_faults(case.specs(env))
        for _ in range(case.invocations):
            ctx = RequestContext.create(sim,
                                        principal=tb.user_hosts[0].name,
                                        deadline=sim.now + case.deadline)
            started_at = sim.now
            deadline_at = ctx.deadline
            try:
                sim.run(until=discover_and_invoke(
                    stack, stack.user_clients[0], "Faulty%", ctx=ctx))
                recovered, root = True, ""
            except Exception as exc:
                recovered, root = False, root_cause_name(exc)
            roots.append(root or "ok")
        finished_at = sim.now
    finally:
        sim.process = kernel_process  # type: ignore[method-assign]

    env.sampler.stop()
    env.fine_sampler.stop()
    drained, drain_note = _drain(sim)
    orphans = sorted(p.name or repr(p) for p in started if p.is_alive)

    plane = bus(sim)
    trace = tuple((round(ev.ts, 9), ev.kind, ev.request_id,
                   tuple(sorted(ev.fields.items())))
                  for ev in plane.events() if ev.kind in RESILIENCE_KINDS)
    from repro.faults.injector import get_injector
    injector = get_injector(sim)
    return {
        "recovered": recovered,
        "root_cause": root,
        "roots": roots,
        "elapsed": finished_at - started_at,
        "within_deadline": recovered and finished_at <= deadline_at,
        "injected": injector.injected if injector else 0,
        "counts": plane.counts(),
        "orphans": orphans,
        "drained": drained,
        "drain_note": drain_note,
        "trace": trace,
    }


def run_faults(seed: int = 0, smoke: bool = False,
               cases: Optional[Tuple[str, ...]] = None) -> FaultsResult:
    """Run the matrix; each case twice, from the same seed, for the
    identical-trace determinism check."""
    wanted = cases if cases is not None else (
        SMOKE_CASES if smoke else tuple(c.name for c in FAULT_CASES))
    by_name = {c.name: c for c in FAULT_CASES}
    outcomes = []
    for name in wanted:
        case = by_name[name]
        first = _run_once(case, seed)
        second = _run_once(case, seed)
        deterministic = (first["trace"] == second["trace"]
                         and first["roots"] == second["roots"])
        outcomes.append(CaseOutcome(case, first, deterministic))
    return FaultsResult(outcomes, seed=seed, smoke=smoke)
