"""Shared scenario plumbing: standard environment + instrumentation."""

from __future__ import annotations

from typing import List, Optional

from repro.core.onserve import OnServeConfig, OnServeStack, deploy_onserve
from repro.grid.testbed import Testbed, build_testbed
from repro.simkernel.kernel import Simulator
from repro.telemetry.sampler import HostSampler
from repro.telemetry.series import TimeSeries
from repro.units import KBps

__all__ = ["ScenarioEnv", "standard_env"]

#: The paper's monitoring interval (Figures 6-8 captions: "3 seconds").
PAPER_SAMPLE_INTERVAL = 3.0


class ScenarioEnv:
    """A deployed testbed + stack + appliance instrumentation."""

    def __init__(self, testbed: Testbed, stack: OnServeStack,
                 sampler: HostSampler, fine_sampler: HostSampler):
        self.testbed = testbed
        self.stack = stack
        self.sim = testbed.sim
        #: The 3-second sampler (what the paper's figures plot).
        self.sampler = sampler
        #: A 1-second sampler for sharper shape assertions.
        self.fine_sampler = fine_sampler
        self.t_start = self.sim.now

    def figure_series(self, metrics=("cpu_pct", "disk_read_kbps",
                                     "disk_write_kbps", "net_in_kbps",
                                     "net_out_kbps")) -> List[TimeSeries]:
        """The paper-interval series, cropped to the measured window."""
        return [self.sampler[m].slice(self.t_start, self.sim.now)
                for m in metrics]

    def mark(self) -> None:
        """Start the measured window now (after setup noise)."""
        self.t_start = self.sim.now


def standard_env(appliance_uplink: float = KBps(85),
                 config: Optional[OnServeConfig] = None,
                 sample_interval: float = PAPER_SAMPLE_INTERVAL,
                 seed: int = 0,
                 **testbed_kw) -> ScenarioEnv:
    """Deploy the standard evaluation environment.

    Returns a :class:`ScenarioEnv` with samplers attached *after*
    deployment so the series start clean.
    """
    testbed_kw.setdefault("n_sites", 4)
    testbed_kw.setdefault("nodes_per_site", 4)
    testbed_kw.setdefault("cores_per_node", 8)
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim=sim, appliance_uplink=appliance_uplink,
                            **testbed_kw)
    stack = sim.run(until=deploy_onserve(testbed, config))
    sampler = HostSampler(testbed.appliance_host, interval=sample_interval)
    fine = HostSampler(testbed.appliance_host, interval=1.0)
    return ScenarioEnv(testbed, stack, sampler, fine)
