"""Bottleneck analysis: §VIII.D's ranking, made quantitative.

The paper's discussion names the stack's bottlenecks in order — the
thin appliance uplink dominates large-file executions, the LRM queue
dominates busy sites, and the middleware's own overheads (DB, SOAP,
polling) fill the rest — but gives no per-layer numbers.  This scenario
produces them: it drives the Figure 7 workload (a ~5 MB executable
through the full discover → upload → submit → poll path) under one
traced :class:`~repro.core.context.RequestContext`, then feeds the
request's span tree, the event bus and the queue gauges to the
critical-path analyzer, printing a per-layer latency attribution table
(queueing vs transfer vs compute) whose rows reconcile with the
end-to-end latency.

``smoke=True`` shrinks the payload and job runtime so CI can run the
whole thing (plus both exporters) in a couple of seconds.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.context import RequestContext
from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.scenarios.common import ScenarioEnv, standard_env
from repro.telemetry.critical_path import Attribution, analyze_request
from repro.telemetry.events import bus
from repro.telemetry.export import chrome_trace, prometheus_text
from repro.telemetry.gauges import gauges
from repro.units import KB, KBps, MB
from repro.workloads.executables import make_payload

__all__ = ["BottleneckResult", "run_bottleneck"]


class BottleneckResult:
    """Attribution + trace + exporter feeds of one analyzed request."""

    def __init__(self, env: ScenarioEnv, ctx: RequestContext,
                 attribution: Attribution, file_bytes: int):
        self.env = env
        self.ctx = ctx
        self.attribution = attribution
        self.file_bytes = file_bytes

    # -- exporter feeds (for CI validation and offline inspection) ----------

    def prometheus(self) -> str:
        """The run's metrics/gauges/event counters as exposition text."""
        return prometheus_text(
            metrics=self.env.stack.soap_server.metrics,
            board=gauges(self.env.sim),
            bus=bus(self.env.sim))

    def trace_json(self) -> str:
        """The request's span tree as Chrome ``trace_event`` JSON."""
        return chrome_trace([self.ctx])

    # -- report -------------------------------------------------------------

    def render(self) -> str:
        att = self.attribution
        lines = [
            "Bottleneck analysis — WS execution, "
            f"{self.file_bytes / MB(1):.1f} MB file (§VIII.D)",
            "=" * 60,
            f"request            : {att.request_id}",
            f"end-to-end latency : {att.total:.3f} s "
            f"({att.span_count} spans)",
            "",
            att.table(),
            "",
            "bottleneck ranking :",
        ]
        for i, (bucket, secs) in enumerate(att.ranked()[:5], 1):
            lines.append(f"  {i}. {bucket:<16} {secs:8.3f} s "
                         f"({secs / att.total * 100.0:.1f}%)")
        interesting = {name: peak
                       for name, peak in sorted(att.queue_peaks.items())
                       if peak > 0}
        if interesting:
            lines.append("")
            lines.append("queue/level peaks  :")
            for name, peak in interesting.items():
                lines.append(f"  {name:<32} {peak:g}")
        lines.append("")
        lines.append(f"reconciles to 1%   : {att.reconciles(tol=0.01)}")
        return "\n".join(lines)


def run_bottleneck(file_bytes: Optional[int] = None,
                   runtime_seconds: float = 90.0,
                   poll_interval: float = 9.0,
                   appliance_uplink: float = KBps(85),
                   seed: int = 0,
                   smoke: bool = False) -> BottleneckResult:
    """Run the traced Figure 7 workload and attribute its latency.

    *smoke* overrides the payload/runtime knobs with small values so
    the full pipeline (including exporters) finishes fast in CI.
    """
    if smoke:
        file_bytes = file_bytes or int(256 * KB(1))
        runtime_seconds = 10.0
        poll_interval = 3.0
    file_bytes = file_bytes or int(5 * MB(1))
    config = OnServeConfig(poll_interval=poll_interval)
    env = standard_env(appliance_uplink=appliance_uplink, config=config,
                       seed=seed)
    tb, stack, sim = env.testbed, env.stack, env.sim

    payload = make_payload("fixed", size=file_bytes,
                           runtime=f"{runtime_seconds}",
                           output_bytes=str(int(KB(8))))
    sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "hotspot.bin", payload,
        description="bottleneck-analysis executable", params_spec=""))

    env.mark()
    # One explicit context for the whole workflow: the analyzer needs
    # the span tree, so the scenario owns the context instead of letting
    # discover_and_invoke mint a throwaway one.
    ctx = RequestContext.create(sim, principal=tb.user_hosts[0].name)
    sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                      "Hotspot%", ctx=ctx))
    # Capacity history for the run's epilogue (feeds mds.history too).
    tb.mds.snapshot()

    attribution = analyze_request(ctx, bus=bus(sim), board=gauges(sim))
    return BottleneckResult(env=env, ctx=ctx, attribution=attribution,
                            file_bytes=file_bytes)
