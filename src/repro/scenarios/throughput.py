"""Invocation hot-path ablation: caches + coalescing vs the faithful path.

The faithful §VII.B workflow repeats per invocation what N concurrent
clients could share: the UDDI inquiry and WSDL fetch (client side), the
MyProxy logon, the DB executable fetch, and the GridFTP staging transfer
(appliance side).  This sweep runs N simultaneous ``discover_and_invoke``
calls against one published service for growing N, twice per level:

* **baseline** — stock :class:`~repro.core.onserve.OnServeConfig`
  (every cache off, no coalescing), the timeline the goldens pin;
* **cached** — ``coalesce=True`` + ``upload_cache=True`` on the
  appliance and a :class:`~repro.ws.cache.ClientCache` on every client.

Each level reports the mean per-invocation simulated latency for both
modes, the reduction, the number of GridFTP staging transfers actually
performed, and the cache hit/miss totals — the numbers behind the
"cached mode cuts mean latency by >= 20% at 8 clients" claim in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.scenarios.common import standard_env
from repro.simkernel.events import Event
from repro.telemetry.events import bus
from repro.units import KB
from repro.workloads.executables import make_payload

__all__ = ["ThroughputResult", "run_throughput"]


class ThroughputResult:
    """One sweep: per-concurrency baseline-vs-cached measurements."""

    def __init__(self, rows: List[Dict[str, float]], rounds: int):
        self.rows = rows
        self.rounds = rounds

    def reduction_at(self, n: int) -> float:
        """Fractional mean-latency reduction of cached mode at level *n*."""
        for row in self.rows:
            if int(row["n"]) == n:
                return row["reduction"]
        raise KeyError(f"no concurrency level {n} in this sweep")

    def render(self) -> str:
        title = (f"Invocation throughput ablation — caches off vs on, "
                 f"{self.rounds} rounds per level")
        lines = [title, "=" * len(title),
                 f"{'N':>3} {'base mean(s)':>13} {'cached mean(s)':>15} "
                 f"{'reduction':>9} {'transfers':>9} {'hits':>6} "
                 f"{'misses':>7}"]
        for row in self.rows:
            lines.append(
                f"{row['n']:>3.0f} {row['base_mean']:>13.1f} "
                f"{row['cached_mean']:>15.1f} "
                f"{100 * row['reduction']:>8.1f}% "
                f"{row['base_transfers']:>4.0f}->{row['cached_transfers']:<4.0f}"
                f"{row['cache_hits']:>6.0f} {row['cache_misses']:>7.0f}")
        return "\n".join(lines)


def run_throughput(levels: Sequence[int] = (1, 2, 4, 8),
                   file_bytes: Optional[int] = None,
                   rounds: int = 2,
                   seed: int = 0,
                   smoke: bool = False) -> ThroughputResult:
    """Sweep concurrency, measuring baseline vs cached mean latency.

    *rounds* back-to-back waves of N concurrent invocations run per
    mode: the first wave exercises coalescing (cold caches shared
    in-flight), later waves exercise the warm caches.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if smoke:
        levels = tuple(levels)[:2] or (1,)
        file_bytes = file_bytes or int(KB(64))
    file_bytes = file_bytes or int(KB(512))
    rows = []
    for n in levels:
        base = _one_mode(n, file_bytes, rounds, seed, cached=False)
        warm = _one_mode(n, file_bytes, rounds, seed, cached=True)
        rows.append({
            "n": float(n),
            "base_mean": base["mean"],
            "cached_mean": warm["mean"],
            "reduction": (base["mean"] - warm["mean"]) / base["mean"],
            "base_transfers": base["transfers"],
            "cached_transfers": warm["transfers"],
            "cache_hits": warm["hits"],
            "cache_misses": warm["misses"],
        })
    return ThroughputResult(rows, rounds)


def _one_mode(n: int, file_bytes: int, rounds: int, seed: int,
              cached: bool) -> Dict[str, float]:
    """One concurrency level in one mode; means over all invocations."""
    config = OnServeConfig(coalesce=cached, upload_cache=cached)
    env = standard_env(config=config, n_users=n, seed=seed)
    stack, sim = env.stack, env.sim
    telemetry = bus(sim)
    if cached:
        stack.enable_client_caches()

    payload = make_payload("fixed", size=file_bytes, runtime="30",
                           output_bytes=str(int(KB(4))))
    sim.run(until=stack.portal.upload_and_generate(
        env.testbed.user_hosts[0], "throughput.bin", payload))

    env.mark()
    transfers0 = telemetry.counts().get("agent.upload", 0)
    hits0 = telemetry.counts().get("cache.hit", 0)
    misses0 = telemetry.counts().get("cache.miss", 0)

    latencies: List[float] = []

    def timed(i: int) -> Generator[Event, None, None]:
        t0 = sim.now
        yield discover_and_invoke(stack, stack.user_clients[i],
                                  "Throughput%")
        latencies.append(sim.now - t0)

    for _ in range(rounds):
        procs = [sim.process(timed(i), name=f"timed:{i}")
                 for i in range(n)]
        sim.run(until=sim.all_of(procs))

    counts = telemetry.counts()
    return {
        "mean": sum(latencies) / len(latencies),
        "transfers": float(counts.get("agent.upload", 0) - transfers0),
        "hits": float(counts.get("cache.hit", 0) - hits0),
        "misses": float(counts.get("cache.miss", 0) - misses0),
    }
