"""Experiment harnesses: one module per paper artefact.

Each scenario deploys a standard testbed + onServe stack, instruments
the appliance host with the paper's 3-second sampler, drives the
workload, and returns a result object carrying the telemetry series and
the headline numbers.  The ``benchmarks/`` tree calls these to print the
paper-shaped output; ``tests/scenarios`` asserts the expected shapes
(see DESIGN.md §4).

* :mod:`~repro.scenarios.fig6` — WS execution, small file (Figure 6)
* :mod:`~repro.scenarios.fig7` — WS execution, ~5 MB file (Figure 7)
* :mod:`~repro.scenarios.fig8` — upload + service generation (Figure 8)
* :mod:`~repro.scenarios.scalability` — §VIII.D concurrency sweeps
* :mod:`~repro.scenarios.overhead` — §VIII.B overhead-vs-runtime study
* :mod:`~repro.scenarios.smallfiles` — §VIII.B many-small-files claim
* :mod:`~repro.scenarios.bottleneck` — §VIII.D per-layer latency
  attribution of one traced execution
* :mod:`~repro.scenarios.faults` — fault-injection matrix: every
  failure mode × its recovery invariant
* :mod:`~repro.scenarios.throughput` — invocation hot-path ablation:
  caches + single-flight coalescing off vs on under concurrency
* :mod:`~repro.scenarios.datapath` — grid data-path ablation:
  per-operation control path vs GridFTP session reuse + batched
  adaptive polling under per-site concurrency
* :mod:`~repro.scenarios.scaleout` — replica fabric sweep: sharded
  stateless appliances behind the request router, 1 → 16 replicas
* :mod:`~repro.scenarios.controltower` — fleet observability: SLO
  burn-rate alerts leading hard violations under injected outages,
  hot-shard localization of skewed load, kernel profiling
* :mod:`~repro.scenarios.chaos` — self-healing drill: kill replicas at
  peak load; zero lost requests, bounded re-route detection, restart
  rejoins the ring
* :mod:`~repro.scenarios.notify` — event-driven job lifecycle: mixed
  notify/poll testbed, push detection lag vs the poll floor, durable
  queue drained
* :mod:`~repro.scenarios.dbscale` — DB tier scale-out ablation: upload
  storm vs invocation p95 with MVCC snapshot reads, WAL-shipping read
  replicas and chunked BLOB streaming on/off
"""

from repro.scenarios.bottleneck import BottleneckResult, run_bottleneck
from repro.scenarios.chaos import ChaosResult, run_chaos
from repro.scenarios.common import ScenarioEnv, standard_env
from repro.scenarios.controltower import ControlTowerResult, run_controltower
from repro.scenarios.datapath import DatapathResult, run_datapath
from repro.scenarios.dbscale import DbScaleResult, run_dbscale
from repro.scenarios.faults import FaultsResult, run_faults
from repro.scenarios.fig6 import Fig6Result, run_fig6
from repro.scenarios.fig7 import Fig7Result, run_fig7
from repro.scenarios.fig8 import Fig8Result, run_fig8
from repro.scenarios.notify import NotifyResult, run_notify
from repro.scenarios.overhead import OverheadResult, run_overhead
from repro.scenarios.scalability import ScalabilityResult, run_scalability
from repro.scenarios.scaleout import ScaleoutResult, run_scaleout
from repro.scenarios.smallfiles import SmallFilesResult, run_smallfiles
from repro.scenarios.throughput import ThroughputResult, run_throughput

__all__ = [
    "ScenarioEnv", "standard_env",
    "Fig6Result", "run_fig6",
    "Fig7Result", "run_fig7",
    "Fig8Result", "run_fig8",
    "ScalabilityResult", "run_scalability",
    "OverheadResult", "run_overhead",
    "SmallFilesResult", "run_smallfiles",
    "BottleneckResult", "run_bottleneck",
    "FaultsResult", "run_faults",
    "ThroughputResult", "run_throughput",
    "DatapathResult", "run_datapath",
    "ScaleoutResult", "run_scaleout",
    "ControlTowerResult", "run_controltower",
    "ChaosResult", "run_chaos",
    "NotifyResult", "run_notify",
    "DbScaleResult", "run_dbscale",
]
