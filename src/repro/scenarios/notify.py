"""Mixed notify/poll testbed: the event-driven job lifecycle ablation.

ROADMAP item 1 made flesh: a two-site testbed where one site's
gatekeeper supports push notifications (state changes ride the durable
:class:`~repro.grid.notify.NotifyQueue`) and the other "doesn't" —
TeraGrid heterogeneity — so every invocation lands on one rung of the
fallback ladder notify → PollMux → ``poll_until`` purely by site
capability.  Round-robin site selection splits N concurrent sleep-job
invocations evenly over both sites; runtimes are staggered so
completions spread out and the poll path's adaptive interval actually
backs off (its worst detection case).

Per site the harness reports:

* **detection lag** — ``core.output_detected`` minus the scheduler's
  ``sched.finish``, mean/p95.  On the notify site this is exactly one
  event-propagation delay; on the poll site it is bounded below by the
  poll floor and degrades with backoff.
* **poller exchanges** — batched ``poller.batch`` rounds attributable
  to the site.  ~0 on the notify site (the push path performs no
  tentative polls at all; only the final output fetch remains).
* **notifications** — messages the site's gatekeeper published, all of
  which must also be delivered (the queue drains to depth 0).

The acceptance bar (``NotifyResult.ok``, CI's gate): every invocation
succeeds, notify-site mean lag <= propagation + 0.1 s, notify-site
poller exchanges == 0, poll-site mean lag strictly worse, the queue
fully drained, and ``job_states`` rows exist only for notify-site jobs.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.grid.notify import JOB_STATES_TABLE
from repro.scenarios.common import standard_env
from repro.simkernel.events import Event
from repro.telemetry.events import bus
from repro.units import KB
from repro.workloads.executables import make_payload

__all__ = ["NotifyResult", "run_notify"]

#: The capability split: first testbed site pushes, second polls.
NOTIFY_SITE = "ncsa"
POLL_SITE = "sdsc"


class NotifyResult:
    """One mixed-capability run: per-site detection economics."""

    def __init__(self, propagation: float, n: int, n_ok: int,
                 per_site: Dict[str, Dict[str, float]],
                 published: int, delivered: int, depth: int,
                 state_rows: Dict[str, int]):
        self.propagation = propagation
        self.n = n
        self.n_ok = n_ok
        #: site -> jobs / lag_mean / lag_p95 / poller_batches /
        #: notifications / capable.
        self.per_site = per_site
        self.published = published
        self.delivered = delivered
        self.depth = depth
        #: site -> rows in the durable ``job_states`` table.
        self.state_rows = state_rows

    @property
    def notify_lag_mean(self) -> float:
        return self.per_site[NOTIFY_SITE]["lag_mean"]

    @property
    def poll_lag_mean(self) -> float:
        return self.per_site[POLL_SITE]["lag_mean"]

    @property
    def notify_poller_batches(self) -> int:
        return int(self.per_site[NOTIFY_SITE]["poller_batches"])

    @property
    def ok(self) -> bool:
        return (self.n_ok == self.n
                # Push detection: one propagation delay, nothing more.
                and self.notify_lag_mean <= self.propagation + 0.1
                # The push path performs zero tentative poll rounds.
                and self.notify_poller_batches == 0
                # The poll site actually polls, and pays for it in lag.
                and self.per_site[POLL_SITE]["poller_batches"] > 0
                and self.poll_lag_mean > self.notify_lag_mean
                # Durable queue drained; lifecycle rows only where the
                # capability exists.
                and self.depth == 0 and self.delivered == self.published
                and self.state_rows.get(NOTIFY_SITE, 0) > 0
                and self.state_rows.get(POLL_SITE, 0) == 0)

    def render(self) -> str:
        title = ("Event-driven job lifecycle — mixed notify/poll testbed "
                 f"({self.n} jobs, propagation {self.propagation:.1f}s)")
        lines = [title, "=" * len(title),
                 f"{'site':>6} {'mode':>7} {'jobs':>5} {'lag mean s':>11} "
                 f"{'lag p95 s':>10} {'poll rounds':>12} {'pushes':>7}"]
        for site in sorted(self.per_site):
            row = self.per_site[site]
            mode = "notify" if row["capable"] else "poll"
            lines.append(
                f"{site:>6} {mode:>7} {int(row['jobs']):>5} "
                f"{row['lag_mean']:>11.2f} {row['lag_p95']:>10.2f} "
                f"{int(row['poller_batches']):>12} "
                f"{int(row['notifications']):>7}")
        lines.append(
            f"queue: {self.published} published, {self.delivered} "
            f"delivered, depth {self.depth}; job_states rows: "
            + ", ".join(f"{s}={c}" for s, c in sorted(self.state_rows.items()))
            + f"; invocations ok {self.n_ok}/{self.n}")
        lines.append(f"gate: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def run_notify(n: int = 12, seed: int = 0,
               smoke: bool = False) -> NotifyResult:
    """Run the mixed-capability ablation; see the module docstring."""
    if smoke:
        n = 6
    config = OnServeConfig(datapath=True, notify=True,
                           notify_sites=(NOTIFY_SITE,),
                           site_policy="round_robin")
    env = standard_env(config=config, n_users=n, seed=seed,
                       n_sites=2, nodes_per_site=4, cores_per_node=8)
    stack, sim = env.stack, env.sim
    telemetry = bus(sim)

    finished: Dict[str, float] = {}
    detected: Dict[str, float] = {}
    telemetry.subscribe(
        lambda ev: finished.setdefault(ev.fields["job_id"], ev.ts),
        kinds=["sched.finish"])
    telemetry.subscribe(
        lambda ev: detected.setdefault(ev.fields["job_id"], ev.ts),
        kinds=["core.output_detected"])

    payload = make_payload("sleep", size=int(KB(64)))
    sim.run(until=stack.portal.upload_and_generate(
        env.testbed.user_hosts[0], "notify.bin", payload,
        params_spec="seconds:double"))
    env.mark()

    base_runtime = 10.0 if smoke else 25.0
    outputs: List[str] = []

    def invoke(i: int) -> Generator[Event, None, None]:
        out = yield discover_and_invoke(stack, stack.user_clients[i],
                                        "Notify%",
                                        seconds=base_runtime + 6.0 * i)
        outputs.append(out)

    procs = [sim.process(invoke(i), name=f"invoke:{i}") for i in range(n)]
    sim.run(until=sim.all_of(procs))

    lags: Dict[str, List[float]] = {}
    for job_id, at in detected.items():
        if job_id in finished:
            site = job_id.split("-job-")[0]
            lags.setdefault(site, []).append(at - finished[job_id])
    batches: Dict[str, int] = {}
    for ev in telemetry.events(kind="poller.batch"):
        site = ev.fields["name"]
        batches[site] = batches.get(site, 0) + 1

    queue = stack.onserve.notify_queue
    per_site: Dict[str, Dict[str, float]] = {}
    for site, gatekeeper in env.testbed.gatekeepers.items():
        site_lags = lags.get(site, [])
        if not site_lags:
            raise RuntimeError(f"notify scenario ran no jobs on {site} "
                               f"(round-robin should cover every site)")
        per_site[site] = {
            "jobs": float(len(site_lags)),
            "lag_mean": sum(site_lags) / len(site_lags),
            "lag_p95": _percentile(site_lags, 95.0),
            "poller_batches": float(batches.get(site, 0)),
            "notifications": float(gatekeeper.notifications),
            "capable": queue.site_capable(site),
        }
    state_rows: Dict[str, int] = {}
    for row in stack.dbmanager.db.select(JOB_STATES_TABLE, lambda r: True):
        state_rows[row["site"]] = state_rows.get(row["site"], 0) + 1
    return NotifyResult(
        propagation=config.notify_propagation, n=n,
        n_ok=sum(1 for out in outputs if out == "slept\n"),
        per_site=per_site, published=queue.published,
        delivered=queue.delivered, depth=queue.depth,
        state_rows=state_rows)
