"""§VIII.B overhead study: onServe vs the raw JSE path.

Paper: "The additional overhead added by Cyberaide onServe should be
quite small compared to the runtime of a typical executable a Grid-Web
service is generated for."

For each executable runtime R the harness measures:

* the full onServe invocation (UDDI discovery, WSDL, stub, SOAP,
  database retrieval, agent, GridFTP, GRAM, tentative polling), and
* the *direct JSE* baseline a grid-savvy user would run by hand:
  MyProxy logon, GridFTP put, GRAM submit, wait, fetch output —
  no appliance anywhere.

Both include the R seconds the job itself runs; the comparison is the
added middleware time, absolute and relative.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.cyberaide.jobspec import CyberaideJobSpec
from repro.grid.testbed import build_testbed
from repro.scenarios.common import standard_env
from repro.simkernel.kernel import Simulator
from repro.units import KB, Mbps
from repro.workloads.executables import make_payload

__all__ = ["OverheadResult", "run_overhead"]


class OverheadResult:
    """Rows of (runtime, onserve_total, direct_total, overheads)."""

    def __init__(self, rows: List[Dict[str, float]]):
        self.rows = rows

    def render(self) -> str:
        title = "Overhead study (§VIII.B) — onServe vs direct JSE"
        lines = [title, "=" * len(title),
                 f"{'runtime(s)':>10} {'onServe(s)':>11} {'direct(s)':>10} "
                 f"{'added(s)':>9} {'relative':>9}"]
        for row in self.rows:
            lines.append(
                f"{row['runtime']:>10.0f} {row['onserve_total']:>11.1f} "
                f"{row['direct_total']:>10.1f} {row['added']:>9.1f} "
                f"{100 * row['relative']:>8.1f}%")
        return "\n".join(lines)


def run_overhead(runtimes=(10.0, 60.0, 300.0, 1800.0),
                 file_bytes: int = int(KB(64)),
                 uplink: float = Mbps(8),
                 poll_interval: float = 9.0,
                 seed: int = 0) -> OverheadResult:
    """Measure both paths for each runtime."""
    rows = []
    for runtime in runtimes:
        onserve_total = _onserve_path(runtime, file_bytes, uplink,
                                      poll_interval, seed)
        direct_total = _direct_path(runtime, file_bytes, uplink, seed)
        added = onserve_total - direct_total
        rows.append({
            "runtime": runtime,
            "onserve_total": onserve_total,
            "direct_total": direct_total,
            "added": added,
            "relative": added / runtime,
        })
    return OverheadResult(rows)


def _onserve_path(runtime: float, file_bytes: int, uplink: float,
                  poll_interval: float, seed: int) -> float:
    env = standard_env(appliance_uplink=uplink,
                       config=OnServeConfig(poll_interval=poll_interval),
                       seed=seed)
    tb, stack, sim = env.testbed, env.stack, env.sim
    payload = make_payload("fixed", size=file_bytes, runtime=f"{runtime}",
                           output_bytes=str(int(KB(4))))
    sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "job.bin", payload))
    t0 = sim.now
    sim.run(until=discover_and_invoke(stack, stack.user_clients[0], "Job%"))
    return sim.now - t0


def _direct_path(runtime: float, file_bytes: int, uplink: float,
                 seed: int) -> float:
    """The hand-rolled JSE workflow, measured from the user's machine.

    The user machine talks to the grid through the same thin uplink the
    appliance would use (both sit behind the same WAN connection)."""
    sim = Simulator(seed=seed)
    tb = build_testbed(sim=sim, n_sites=4, nodes_per_site=4,
                       cores_per_node=8, appliance_uplink=uplink)
    tb.new_grid_identity("poweruser", "pw")
    payload = make_payload("fixed", size=file_bytes, runtime=f"{runtime}",
                           output_bytes=str(int(KB(4))))
    # The power user works from the machine behind the WAN uplink.
    client = tb.appliance_host
    spec = CyberaideJobSpec("job.bin")
    site = tb.mds.best_site().name

    def flow() -> Generator:
        _key, proxy, ee = yield tb.myproxy.logon(client, "poweruser", "pw",
                                                 lifetime=3600.0)
        chain = [proxy, ee]
        yield tb.ftp(site).put(client, chain, spec.staged_path(), payload)
        job_id = yield tb.gram(site).submit(client, chain,
                                            spec.to_rsl("direct"))
        job = yield tb.gram(site).completion_event(job_id)
        yield tb.ftp(site).get(client, chain, job.description.stdout)

    t0 = sim.now
    sim.run(until=sim.process(flow()))
    return sim.now - t0
