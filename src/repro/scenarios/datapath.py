"""Grid data-path ablation: pay-per-operation vs batched/session mode.

The faithful grid control path pays per operation: a GSI handshake per
GridFTP transfer, a full gatekeeper exchange per tentative poll, and one
fixed-interval ``poll_until`` loop per in-flight job.  ``datapath`` mode
(PR 5) amortizes all three: one GridFTP control channel per (site,
credential), one batched ``pollOutputs`` exchange per site per round,
and an adaptive poll interval that backs off while nothing changes.

This sweep runs N concurrent sleep-job invocations against one site for
growing N, once per mode, and reports per level:

* **control bytes** — gatekeeper control traffic + GridFTP control
  channels + agent existence probes (plain byte counters on the
  endpoints; no simulated cost is added to read them);
* **gatekeeper head-node CPU** — the *modelled* per-exchange cost
  (``REQUEST_CPU`` per exchange + ``BATCH_ITEM_CPU`` per extra batched
  job), i.e. what a real gatekeeper would burn serving the exchanges;
* **completion-detection lag** — ``core.output_detected`` minus the
  scheduler's ``sched.finish``, mean/p50/p95 over the N jobs.

Job runtimes are staggered (``base + 6·i`` seconds) so completions
spread over time and the adaptive interval's snap-back actually matters.
The acceptance bar: at >= 16 concurrent jobs, batched mode cuts control
bytes *and* modelled head CPU by >= 40% while lowering mean lag.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Sequence

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.scenarios.common import ScenarioEnv, standard_env
from repro.simkernel.events import Event
from repro.telemetry.events import bus
from repro.units import KB
from repro.workloads.executables import make_payload

__all__ = ["DatapathResult", "run_datapath"]


class DatapathResult:
    """One sweep: per-concurrency baseline-vs-batched measurements."""

    def __init__(self, rows: List[Dict[str, float]]):
        self.rows = rows

    def _row(self, n: int) -> Dict[str, float]:
        for row in self.rows:
            if int(row["n"]) == n:
                return row
        raise KeyError(f"no concurrency level {n} in this sweep")

    def control_reduction_at(self, n: int) -> float:
        """Fractional control-byte reduction of batched mode at *n*."""
        row = self._row(n)
        return 1.0 - row["batch_ctl"] / row["base_ctl"]

    def cpu_reduction_at(self, n: int) -> float:
        """Fractional modelled head-CPU reduction at *n*."""
        row = self._row(n)
        return 1.0 - row["batch_cpu"] / row["base_cpu"]

    def lag_improved_at(self, n: int) -> bool:
        """True when batched mean detection lag beats the baseline."""
        row = self._row(n)
        return row["batch_lag_mean"] < row["base_lag_mean"]

    def render(self) -> str:
        title = ("Grid data-path ablation — per-operation vs "
                 "batched/session mode")
        lines = [title, "=" * len(title),
                 f"{'N':>3} {'ctl KB':>14} {'red':>6} {'head CPU s':>13} "
                 f"{'red':>6} {'lag mean s':>13} {'lag p95 s':>13}"]
        for row in self.rows:
            n = int(row["n"])
            lines.append(
                f"{n:>3} "
                f"{row['base_ctl'] / 1024:>6.1f}->{row['batch_ctl'] / 1024:<6.1f} "
                f"{100 * self.control_reduction_at(n):>5.1f}% "
                f"{row['base_cpu']:>6.2f}->{row['batch_cpu']:<5.2f} "
                f"{100 * self.cpu_reduction_at(n):>5.1f}% "
                f"{row['base_lag_mean']:>5.1f}->{row['batch_lag_mean']:<6.1f} "
                f"{row['base_lag_p95']:>5.1f}->{row['batch_lag_p95']:<6.1f}")
        return "\n".join(lines)


def run_datapath(levels: Sequence[int] = (1, 2, 4, 8, 16, 32),
                 seed: int = 0,
                 smoke: bool = False) -> DatapathResult:
    """Sweep per-site concurrency, baseline vs batched data path."""
    if smoke:
        levels = (1, 4)
    rows = []
    for n in levels:
        base = _one_mode(n, seed, batched=False, smoke=smoke)
        batch = _one_mode(n, seed, batched=True, smoke=smoke)
        rows.append({
            "n": float(n),
            "base_ctl": base["ctl"], "batch_ctl": batch["ctl"],
            "base_cpu": base["cpu"], "batch_cpu": batch["cpu"],
            "base_lag_mean": base["lag_mean"],
            "batch_lag_mean": batch["lag_mean"],
            "base_lag_p50": base["lag_p50"], "batch_lag_p50": batch["lag_p50"],
            "base_lag_p95": base["lag_p95"], "batch_lag_p95": batch["lag_p95"],
            "base_latency": base["latency"], "batch_latency": batch["latency"],
        })
    return DatapathResult(rows)


def _percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _control_bytes(env: ScenarioEnv) -> float:
    tb = env.testbed
    return float(sum(g.control_bytes for g in tb.gatekeepers.values())
                 + sum(f.control_bytes for f in tb.ftp_servers.values())
                 + env.stack.agent.probe_bytes)


def _head_cpu(env: ScenarioEnv) -> float:
    return sum(g.head_cpu_modeled
               for g in env.testbed.gatekeepers.values())


def _one_mode(n: int, seed: int, batched: bool,
              smoke: bool) -> Dict[str, float]:
    """One concurrency level in one mode, on a single-site testbed."""
    config = OnServeConfig(datapath=batched)
    env = standard_env(config=config, n_users=n, seed=seed,
                       n_sites=1, nodes_per_site=4, cores_per_node=8)
    stack, sim = env.stack, env.sim
    telemetry = bus(sim)

    # Ground truth vs detection: the scheduler stamps actual completion,
    # the runtime stamps when polling noticed it.
    finished: Dict[str, float] = {}
    detected: Dict[str, float] = {}
    telemetry.subscribe(
        lambda ev: finished.setdefault(ev.fields["job_id"], ev.ts),
        kinds=["sched.finish"])
    telemetry.subscribe(
        lambda ev: detected.setdefault(ev.fields["job_id"], ev.ts),
        kinds=["core.output_detected"])

    payload = make_payload("sleep", size=int(KB(64)))
    sim.run(until=stack.portal.upload_and_generate(
        env.testbed.user_hosts[0], "datapath.bin", payload,
        params_spec="seconds:double"))

    env.mark()
    ctl0 = _control_bytes(env)
    cpu0 = _head_cpu(env)

    base_runtime = 10.0 if smoke else 25.0
    latencies: List[float] = []

    def timed(i: int) -> Generator[Event, None, None]:
        t0 = sim.now
        yield discover_and_invoke(stack, stack.user_clients[i],
                                  "Datapath%",
                                  seconds=base_runtime + 6.0 * i)
        latencies.append(sim.now - t0)

    procs = [sim.process(timed(i), name=f"timed:{i}") for i in range(n)]
    sim.run(until=sim.all_of(procs))

    lags = [detected[job] - finished[job]
            for job in detected if job in finished]
    if not lags:
        raise RuntimeError("datapath scenario detected no completions")
    return {
        "ctl": _control_bytes(env) - ctl0,
        "cpu": _head_cpu(env) - cpu0,
        "lag_mean": sum(lags) / len(lags),
        "lag_p50": _percentile(lags, 50.0),
        "lag_p95": _percentile(lags, 95.0),
        "latency": sum(latencies) / len(latencies),
    }
