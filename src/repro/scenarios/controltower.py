"""Fleet control tower: burn-rate alerts, hot shards, kernel profile.

The scale-out sweep (:mod:`~repro.scenarios.scaleout`) proved the
sharded fabric *scales*; this scenario proves it is *operable*.  An
8-replica fabric serves a deliberately skewed workload — most clients
hammer one hot service, whose consistent-hash owner replica therefore
melts — while the grid behind it suffers scheduled all-site outage
bursts.  An attached :class:`~repro.telemetry.fleet.ControlTower`
(SLO tracker + fleet rollup + hot-shard detector + kernel profiler)
must then demonstrate the two control-plane claims this PR makes:

* **burn-rate alerts lead hard violations** — the multi-window burn
  alert on the availability SLO fires at least one full fault-window
  before compliance over the long window actually drops below target
  (the Google-SRE argument: burn rate is the derivative of budget
  spend, so it moves long before the integral crosses), and
* **hot-shard detection localizes popularity skew** — the detector
  names the exact replica owning the hot service, by scoring observed
  per-replica load against ring-arc ownership (so vnode placement
  unevenness cannot masquerade as a hot key).

The run is three phases on one timeline: a *warm* phase of clean
traffic (this builds the error budget the breach math needs — with no
good history, total outages breach almost instantly and no alert can
lead), then a *fault* phase of repeating ``site.outage`` bursts over
every site, then a short drain.  Timing is compressed: the scenario
passes scaled-down :class:`~repro.telemetry.slo.BurnRule` windows
instead of the production 5m/1h/6h defaults, keeping the sim short
while preserving the ordering (warm-phase good traffic must exceed
``factor x long_window``, which it does by construction).

Outputs: the per-replica dashboard (load share vs ring ownership,
inflight, p95, faults, SLO budget), the alert/violation lead-time
table, the kernel profiler's events-per-second + telemetry-overhead
split, and the standard exports (``prometheus_text`` with
replica-labelled families, ``chrome_trace`` with router-hop parent
spans and replica/principal args).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.context import RequestContext
from repro.core.fabric import deploy_fabric
from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.faults import FaultSpec
from repro.grid.testbed import build_testbed
from repro.simkernel.events import Event
from repro.simkernel.kernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.export import chrome_trace, prometheus_text
from repro.telemetry.gauges import gauges
from repro.telemetry.slo import BurnRule, SloSpec
from repro.units import KB
from repro.workloads.executables import make_payload

__all__ = ["ControlTowerResult", "run_controltower"]


class ControlTowerResult:
    """One control-tower run: alert timeline + fleet view + kernel profile."""

    def __init__(self, tower, router, contexts: List[RequestContext],
                 metrics, event_bus, board,
                 requests: int, faulted: int,
                 fault_window: float, fault_starts: List[float],
                 hot_service: str, hot_owner: str,
                 warm_until: float, run_until: float):
        self.tower = tower
        self.router = router
        #: Traced request contexts (bounded sample for chrome_trace).
        self.contexts = contexts
        self.metrics = metrics
        self.bus = event_bus
        self.board = board
        self.requests = requests
        self.faulted = faulted
        #: Length of one injected outage burst, in sim seconds.
        self.fault_window = fault_window
        self.fault_starts = fault_starts
        self.hot_service = hot_service
        #: The replica the hash ring assigns the hot service to — what
        #: the detector must name.
        self.hot_owner = hot_owner
        self.warm_until = warm_until
        self.run_until = run_until

    # -- the two claims ------------------------------------------------------

    @property
    def alert_at(self) -> Optional[float]:
        """First availability burn-rate alert (sim time)."""
        return self.tower.slo.first_transition("slo.burn", "fleet-availability")

    @property
    def breach_at(self) -> Optional[float]:
        """First hard availability violation (sim time)."""
        return self.tower.slo.first_transition("slo.violation",
                                               "fleet-availability")

    @property
    def alert_lead(self) -> Optional[float]:
        """Seconds the burn alert led the hard breach (None = no breach)."""
        if self.alert_at is None or self.breach_at is None:
            return None
        return self.breach_at - self.alert_at

    @property
    def alert_led_breach(self) -> bool:
        """Did the alert fire >= one full fault-window before the breach?"""
        lead = self.alert_lead
        return lead is not None and lead >= self.fault_window

    @property
    def detected_hot(self) -> Optional[str]:
        first = self.tower.detector.first_detection()
        return first[1] if first else None

    @property
    def detected_at(self) -> Optional[float]:
        first = self.tower.detector.first_detection()
        return first[0] if first else None

    @property
    def hot_shard_localized(self) -> bool:
        return self.detected_hot == self.hot_owner

    @property
    def ok(self) -> bool:
        return self.alert_led_breach and self.hot_shard_localized

    # -- lead-time table -----------------------------------------------------

    def lead_time_rows(self) -> List[Dict[str, object]]:
        """Per-objective alert/violation timeline (EXPERIMENTS.md table)."""
        rows = []
        slo = self.tower.slo
        for spec in slo.specs:
            for kind in ("availability", "latency"):
                if (spec.name, kind) not in slo._objectives:
                    continue
                alert = slo.first_transition("slo.burn", spec.name)
                breach = slo.first_transition("slo.violation", spec.name)
                rows.append({
                    "slo": spec.name, "objective": kind,
                    "alert_at": alert, "breach_at": breach,
                    "lead": (breach - alert
                             if alert is not None and breach is not None
                             else None),
                })
        return rows

    # -- exports -------------------------------------------------------------

    def prometheus(self) -> str:
        return prometheus_text(metrics=self.metrics, board=self.board,
                               bus=self.bus)

    def trace_json(self) -> str:
        return chrome_trace(self.contexts)

    # -- report --------------------------------------------------------------

    def render(self) -> str:
        title = (f"Control tower — 8-replica fabric, skewed load, "
                 f"{len(self.fault_starts)} x {self.fault_window:.0f}s "
                 f"all-site outage bursts")
        lines = [title, "=" * len(title), ""]

        budgets = {}
        if self.tower.slo is not None:
            avail = self.tower.slo.objective("fleet-availability",
                                             "availability")
            budget_text = f"{avail.budget_remaining():.1%}"
            budgets = {name: budget_text
                       for name in self.tower.fleet.replicas}
        ownership = self.router.ring.ownership()
        lines.append(self.tower.fleet.table(ownership=ownership,
                                            budgets=budgets))
        lines.append("")

        hot = self.detected_hot
        lines.append(
            f"hot shard: detected={hot or 'none'} "
            f"expected={self.hot_owner} (owner of {self.hot_service})"
            + (f" at t={self.detected_at:.0f}s" if hot else "")
            + f"  [{'OK' if self.hot_shard_localized else 'MISS'}]")
        lines.append("")

        lines.append("alert lead times (availability target breached by "
                     "injected outages):")
        lines.append(f"  {'slo':<20} {'objective':<13} {'alert':>8} "
                     f"{'breach':>8} {'lead':>8}")
        for row in self.lead_time_rows():
            fmt = lambda v: f"{v:.0f}s" if v is not None else "-"
            lines.append(f"  {row['slo']:<20} {row['objective']:<13} "
                         f"{fmt(row['alert_at']):>8} "
                         f"{fmt(row['breach_at']):>8} "
                         f"{fmt(row['lead']):>8}")
        lead = self.alert_lead
        lines.append(
            f"  availability alert led the hard breach by "
            + (f"{lead:.0f}s" if lead is not None else "(no breach)")
            + f" (>= one {self.fault_window:.0f}s fault window: "
            + f"{'yes' if self.alert_led_breach else 'NO'})")
        lines.append("")

        lines.append(self.tower.slo.table())
        lines.append("")

        share = (self.faulted / self.requests) if self.requests else 0.0
        lines.append(f"workload: {self.requests} invocations, "
                     f"{self.faulted} faulted ({share:.1%}); warm until "
                     f"t={self.warm_until:.0f}s, run until "
                     f"t={self.run_until:.0f}s")
        if self.tower.profiler is not None:
            lines.append("")
            lines.append("kernel profile:")
            for text in self.tower.profiler.report().splitlines():
                lines.append(f"  {text}")
        return "\n".join(lines)


def run_controltower(replicas: int = 8,
                     workers: Optional[int] = None,
                     period: Optional[float] = None,
                     warm: Optional[float] = None,
                     bursts: Optional[int] = None,
                     burst_length: float = 30.0,
                     burst_period: float = 150.0,
                     hot_fraction: float = 2 / 3,
                     seed: int = 0,
                     smoke: bool = False,
                     trace_sample: int = 12) -> ControlTowerResult:
    """Run the control-tower demonstration; returns the result handle.

    The burn-rate ordering is arithmetic, not luck: with availability
    target 0.95 (budget 0.05) and rules ``(30s/225s, x3)`` +
    ``(150s/1350s, x1.5)``, an all-site outage makes the short window
    go fully bad within seconds, and the x3 long window crosses during
    the *second* burst (~30s of bad in 225s > 3 x 0.05).  The hard
    violation needs cumulative bad over the 1350s compliance window to
    exceed 5%, which ``warm`` seconds of clean traffic hold off until
    the *third* burst — so the alert leads by roughly one burst period,
    several times the fault window.  Shrinking ``warm`` below
    ``factor x long_window`` destroys the ordering; the defaults keep
    3x headroom.
    """
    if smoke:
        workers = 6 if workers is None else workers
        period = 20.0 if period is None else period
        warm = 900.0 if warm is None else warm
        bursts = 2 if bursts is None else bursts
    workers = 12 if workers is None else workers
    period = 30.0 if period is None else period
    warm = 1200.0 if warm is None else warm
    bursts = 4 if bursts is None else bursts
    if workers < 2 or replicas < 2:
        raise ValueError("need >= 2 workers and >= 2 replicas")

    sim = Simulator(seed=seed)
    testbed = build_testbed(sim=sim, n_sites=4, nodes_per_site=4,
                            cores_per_node=8, n_users=workers)
    # Crisp failure semantics: no retries, no failover, breakers never
    # open — an invocation during an outage burst faults exactly once,
    # fast, so the good/bad request stream follows the burst windows
    # and the burn-rate arithmetic in the docstring holds.
    config = OnServeConfig(poll_interval=2.0,
                           retry_max_attempts=1,
                           failover_sites=0,
                           breaker_failure_threshold=10 ** 6)
    stack = sim.run(until=deploy_fabric(testbed, config, replicas=replicas,
                                        router=True))
    # Discovery/WSDL caches keep the UDDI inquiry service's owner
    # replica from absorbing one inquiry per round — after the first
    # round, server-side load is the *service* traffic the skew is in.
    stack.enable_client_caches()

    services = replicas
    payload = make_payload("fixed", size=int(KB(64)), runtime="2",
                           output_bytes=str(int(KB(4))))
    generated = [
        sim.run(until=stack.portal.upload_and_generate(
            testbed.user_hosts[0], f"tower{j:02d}.bin", payload))
        for j in range(services)]
    # Route on the *actual* generated name ("Tower00Service") — the
    # ring hashes full service names, not the discovery prefix.
    hot_service = generated[0].service_name
    hot_owner = stack.router.ring.owner(hot_service)

    rules = (BurnRule(30.0, 225.0, 3.0, "page"),
             BurnRule(150.0, 1350.0, 1.5, "ticket"))
    specs = [
        SloSpec("fleet-availability", service="Tower%",
                availability=0.95, compliance_window=1350.0),
        SloSpec(f"hot-{hot_service}", service=f"{hot_service}%",
                latency_target=60.0, latency_quantile=0.9,
                compliance_window=1350.0),
    ]
    tower = stack.attach_control_tower(
        specs=specs, rules=rules, profiler=True,
        detector_window=300.0, detector_threshold=2.0,
        detector_min_samples=30, detector_check_every=16)

    t_start = sim.now
    warm_until = t_start + warm
    fault_starts = [warm_until + k * burst_period for k in range(bursts)]
    testbed.install_faults([
        FaultSpec("site.outage", target="*",
                  window=(start, start + burst_length))
        for start in fault_starts])
    run_until = fault_starts[-1] + burst_length + 60.0

    hot_workers = max(1, round(hot_fraction * workers))
    latencies: List[float] = []
    outcomes: List[bool] = []
    contexts: List[RequestContext] = []

    def worker(i: int) -> Generator[Event, None, None]:
        client = stack.user_clients[i]
        if i < hot_workers:
            pattern = f"{hot_service}%"
        else:
            cold = 1 + (i - hot_workers) % (services - 1)
            pattern = f"Tower{cold:02d}%"
        slot = t_start + (i / workers) * period
        while slot < run_until:
            if sim.now < slot:
                yield sim.timeout(slot - sim.now)
            ctx = RequestContext.create(sim, principal=client.host.name)
            if len(contexts) < trace_sample:
                contexts.append(ctx)
            t_req = sim.now
            try:
                yield discover_and_invoke(stack, client, pattern, ctx=ctx)
                outcomes.append(True)
            except Exception:
                outcomes.append(False)
            latencies.append(sim.now - t_req)
            slot += period

    procs = [sim.process(worker(i), name=f"tenant:{i}")
             for i in range(workers)]
    sim.run(until=sim.all_of(procs))
    tower.slo.evaluate()
    tower.detector.check()
    tower.profiler.detach()

    return ControlTowerResult(
        tower, stack.router, contexts, stack.soap_server.metrics,
        bus(sim), gauges(sim),
        requests=len(outcomes), faulted=outcomes.count(False),
        fault_window=burst_length, fault_starts=fault_starts,
        hot_service=hot_service, hot_owner=hot_owner,
        warm_until=warm_until, run_until=run_until)
