"""Replica scale-out sweep: sharded appliances behind the request router.

The single virtual appliance's thin WAN uplink (85 KB/s in the paper's
testbed) serializes the per-invocation GridFTP staging transfer — the
§VIII bottleneck.  :func:`~repro.core.fabric.deploy_fabric` shards the
appliance into N stateless replicas, each with its own uplink, behind a
consistent-hash :class:`~repro.ws.router.RequestRouter`; this sweep
measures what that buys.

For each replica count the sweep deploys a fabric, publishes S services
through the portal, then lets C closed-loop clients each run K
``discover_and_invoke`` rounds (every call — inquiry, WSDL fetch,
execute — travels through the router).  Per level it reports end-to-end
throughput, mean and p95 invocation latency, how often the router
deviated from the hash owner (spill/breaker rebalances) and how many
on-demand service materializations the replicas performed.

Two acceptance gates ride on these numbers (EXPERIMENTS.md SCALEOUT,
``benchmarks/bench_scaleout.py``):

* near-linear scaling — ``speedup_at(8) >= 6`` over the 1-replica
  fabric, and
* cheap indirection — the router's extra hop costs **< 5%** end-to-end
  at ``replicas=1``, measured by re-running the 1-replica level with
  the router disabled (the byte-identical ``deploy_onserve`` path) and
  comparing elapsed times.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from repro.core.fabric import deploy_fabric
from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.grid.testbed import build_testbed
from repro.simkernel.events import Event
from repro.simkernel.kernel import Simulator
from repro.telemetry.events import bus
from repro.units import KB
from repro.workloads.executables import make_payload

__all__ = ["ScaleoutResult", "run_scaleout"]


class ScaleoutResult:
    """One sweep: per-replica-count fabric measurements + overhead pair."""

    def __init__(self, rows: List[Dict[str, float]],
                 baseline_elapsed: float, routed_elapsed: float,
                 clients: int, rounds: int, services: int):
        self.rows = rows
        #: replicas=1, router *off* — the stock deploy_onserve timeline.
        self.baseline_elapsed = baseline_elapsed
        #: replicas=1, router *on* — same workload through the router.
        self.routed_elapsed = routed_elapsed
        self.clients = clients
        self.rounds = rounds
        self.services = services

    def row_at(self, replicas: int) -> Dict[str, float]:
        for row in self.rows:
            if int(row["replicas"]) == replicas:
                return row
        raise KeyError(f"no replica level {replicas} in this sweep")

    def speedup_at(self, replicas: int) -> float:
        """Throughput multiple over the 1-replica fabric."""
        return (self.row_at(replicas)["throughput"]
                / self.row_at(1)["throughput"])

    def router_overhead(self) -> float:
        """Fractional end-to-end cost of the router hop at replicas=1."""
        return ((self.routed_elapsed - self.baseline_elapsed)
                / self.baseline_elapsed)

    def render(self) -> str:
        title = (f"Replica scale-out — {self.clients} clients x "
                 f"{self.rounds} rounds over {self.services} services")
        lines = [title, "=" * len(title),
                 f"{'N':>3} {'elapsed(s)':>11} {'inv/s':>7} "
                 f"{'mean(s)':>8} {'p95(s)':>8} {'speedup':>8} "
                 f"{'rebal':>6} {'mater':>6}"]
        for row in self.rows:
            lines.append(
                f"{row['replicas']:>3.0f} {row['elapsed']:>11.1f} "
                f"{row['throughput']:>7.3f} {row['mean']:>8.1f} "
                f"{row['p95']:>8.1f} "
                f"{self.speedup_at(int(row['replicas'])):>7.2f}x "
                f"{row['rebalances']:>6.0f} {row['materialized']:>6.0f}")
        lines.append(
            f"router overhead @1 replica: {100 * self.router_overhead():.2f}%"
            f" (direct {self.baseline_elapsed:.1f}s -> routed "
            f"{self.routed_elapsed:.1f}s)")
        return "\n".join(lines)


def run_scaleout(replica_levels: Sequence[int] = (1, 2, 4, 8, 16),
                 clients: Optional[int] = None,
                 services: Optional[int] = None,
                 rounds: Optional[int] = None,
                 file_bytes: Optional[int] = None,
                 runtime: str = "6",
                 spill_threshold: int = 4,
                 seed: int = 0,
                 smoke: bool = False) -> ScaleoutResult:
    """Sweep replica counts under a fixed closed-loop client population.

    Staging dominates each invocation (upload caches are off, faithful
    to the paper's workflow), so throughput is gated by how many WAN
    uplinks the fabric owns — which is exactly the replica count.
    """
    if smoke:
        replica_levels = tuple(replica_levels)[:2] or (1,)
        clients = 6 if clients is None else clients
        services = 3 if services is None else services
        rounds = 1 if rounds is None else rounds
        file_bytes = int(KB(64)) if file_bytes is None else file_bytes
        runtime = "4"
    clients = 160 if clients is None else clients
    services = 12 if services is None else services
    rounds = 3 if rounds is None else rounds
    file_bytes = int(KB(256)) if file_bytes is None else file_bytes
    if clients < 1 or services < 1 or rounds < 1:
        raise ValueError("clients, services and rounds must be >= 1")

    rows = []
    routed_elapsed = None
    for n in replica_levels:
        level = _one_level(n, True, clients, services, rounds, file_bytes,
                           runtime, spill_threshold, seed)
        rows.append(level)
        if n == 1:
            routed_elapsed = level["elapsed"]
    if routed_elapsed is None:
        routed = _one_level(1, True, clients, services, rounds, file_bytes,
                            runtime, spill_threshold, seed)
        routed_elapsed = routed["elapsed"]
    baseline = _one_level(1, False, clients, services, rounds, file_bytes,
                          runtime, spill_threshold, seed)
    return ScaleoutResult(rows, baseline["elapsed"], routed_elapsed,
                          clients, rounds, services)


def _p95(samples: List[float]) -> float:
    ordered = sorted(samples)
    index = int(round(0.95 * (len(ordered) - 1)))
    return ordered[min(index, len(ordered) - 1)]


def _one_level(replicas: int, router_on: bool, clients: int, services: int,
               rounds: int, file_bytes: int, runtime: str,
               spill_threshold: int, seed: int) -> Dict[str, float]:
    """Deploy one fabric and push the full client population through it."""
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim=sim, n_sites=4, nodes_per_site=4,
                            cores_per_node=8, n_users=clients)
    stack = sim.run(until=deploy_fabric(
        testbed, OnServeConfig(), replicas=replicas, router=router_on,
        spill_threshold=spill_threshold))
    telemetry = bus(sim)

    payload = make_payload("fixed", size=file_bytes, runtime=runtime,
                           output_bytes=str(int(KB(4))))
    for j in range(services):
        sim.run(until=stack.portal.upload_and_generate(
            testbed.user_hosts[0], f"scale{j:02d}.bin", payload))

    t0 = sim.now
    counts0 = telemetry.counts()
    latencies: List[float] = []

    def worker(i: int) -> Generator[Event, None, None]:
        client = stack.user_clients[i]
        pattern = f"Scale{i % services:02d}%"
        for _ in range(rounds):
            t_req = sim.now
            yield discover_and_invoke(stack, client, pattern)
            latencies.append(sim.now - t_req)

    procs = [sim.process(worker(i), name=f"client:{i}")
             for i in range(clients)]
    sim.run(until=sim.all_of(procs))

    elapsed = sim.now - t0
    counts = telemetry.counts()
    return {
        "replicas": float(replicas),
        "elapsed": elapsed,
        "throughput": len(latencies) / elapsed,
        "mean": sum(latencies) / len(latencies),
        "p95": _p95(latencies),
        "rebalances": float(stack.router.rebalances),
        "routed": float(stack.router.requests_routed),
        "materialized": float(
            counts.get("core.service_materialized", 0)
            - counts0.get("core.service_materialized", 0)),
    }
