"""Secondary indexes: hash (equality) and sorted (range)."""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Set, Tuple


__all__ = ["HashIndex", "SortedIndex"]


class HashIndex:
    """value -> set of rowids, for O(1) equality lookups."""

    def __init__(self, table_name: str, column: str):
        self.table_name = table_name
        self.column = column
        self._map: Dict[Any, Set[int]] = {}

    def add(self, value: Any, rowid: int) -> None:
        self._map.setdefault(_hashable(value), set()).add(rowid)

    def remove(self, value: Any, rowid: int) -> None:
        key = _hashable(value)
        bucket = self._map.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._map[key]

    def find(self, value: Any) -> Set[int]:
        """Rowids whose indexed column equals *value*."""
        return set(self._map.get(_hashable(value), ()))

    def __len__(self) -> int:
        return sum(len(b) for b in self._map.values())

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<HashIndex {self.table_name}.{self.column} keys={len(self._map)}>"


class SortedIndex:
    """Sorted (value, rowid) pairs supporting range scans.

    ``None`` values are not indexed (SQL semantics: NULL never matches a
    range predicate).
    """

    def __init__(self, table_name: str, column: str):
        self.table_name = table_name
        self.column = column
        self._entries: List[Tuple[Any, int]] = []

    def add(self, value: Any, rowid: int) -> None:
        if value is None:
            return
        bisect.insort(self._entries, (value, rowid))

    def remove(self, value: Any, rowid: int) -> None:
        if value is None:
            return
        pos = bisect.bisect_left(self._entries, (value, rowid))
        if pos < len(self._entries) and self._entries[pos] == (value, rowid):
            self._entries.pop(pos)

    def range(self, lo: Any = None, hi: Any = None,
              lo_open: bool = False, hi_open: bool = False) -> Iterator[int]:
        """Rowids with lo (<|<=) value (<|<=) hi, in value order."""
        entries = self._entries
        if lo is None:
            start = 0
        elif lo_open:
            start = bisect.bisect_right(entries, (lo, float("inf")))
        else:
            start = bisect.bisect_left(entries, (lo, -1))
        for value, rowid in entries[start:]:
            if hi is not None:
                if hi_open and value >= hi:
                    break
                if not hi_open and value > hi:
                    break
            yield rowid

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<SortedIndex {self.table_name}.{self.column} n={len(self)}>"


def _hashable(value: Any) -> Any:
    """Make BLOB values usable as dict keys."""
    if isinstance(value, bytearray):
        return bytes(value)
    return value
