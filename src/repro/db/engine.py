"""The database engine: tables + indexes + WAL + transactions.

Concurrency model: single writer, serialized transactions (matching the
way onServe's DbManager used its MySQL connection).  Every mutation is
logged to the write-ahead log *before* being applied, so a crash at any
byte boundary recovers to the last committed transaction.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DatabaseError, RecordNotFound, TransactionError
from repro.db.index import HashIndex, SortedIndex
from repro.db.table import Column, HeapTable, Schema
from repro.db.wal import WriteAheadLog

__all__ = ["Database", "Snapshot"]

Predicate = Callable[[Dict[str, Any]], bool]


class Database:
    """An embedded single-writer relational database.

    With ``mvcc=True`` the engine keeps per-row version chains so that
    :meth:`snapshot` read handles observe the last *committed* state even
    while a writer transaction is open (snapshot isolation for readers).
    Version bookkeeping is pure python — it creates no simulation events.
    """

    def __init__(self, wal: Optional[WriteAheadLog] = None,
                 mvcc: bool = False):
        self.wal = wal if wal is not None else WriteAheadLog()
        self.tables: Dict[str, HeapTable] = {}
        self._indexes: Dict[Tuple[str, str], Any] = {}
        self._txn_counter = itertools.count(1)
        self._active_txn: Optional[int] = None
        self._undo: List[Tuple] = []
        #: Snapshot-isolation reads enabled?
        self.mvcc = bool(mvcc)
        # Commit-sequence watermark: bumps on every commit (incl. autocommit).
        self._commit_seq = 0
        # (table, rowid) pairs whose pre-image was saved by the active txn.
        self._txn_touched: Set[Tuple[str, int]] = set()
        # Open snapshot read handles (for version pruning).
        self._snapshots: List["Snapshot"] = []
        #: Query-planner counters (pure bookkeeping, used by tests/telemetry).
        self.stats: Dict[str, int] = {
            "rows_scanned": 0, "index_rows": 0, "snapshot_reads": 0,
        }

    # ------------------------------------------------------------------ DDL

    def _ddl_guard(self, what: str) -> None:
        # DDL is autocommitted and has no undo entries, so allowing it
        # inside an explicit transaction would make rollback() lie.
        if self._active_txn is not None:
            raise TransactionError(
                f"{what} inside an active transaction is not supported; "
                f"commit or roll back first")

    def create_table(self, name: str, columns: Sequence[Column]) -> None:
        """Create a table (autocommitted DDL)."""
        self._ddl_guard("create_table")
        if name in self.tables:
            raise DatabaseError(f"table {name!r} already exists")
        schema = Schema(columns)
        self.wal.append((
            "create_table", name,
            [[c.name, c.type, int(c.nullable), int(c.primary_key)]
             for c in schema.columns],
        ))
        self.tables[name] = HeapTable(name, schema)

    def drop_table(self, name: str) -> None:
        """Drop a table and its indexes (autocommitted DDL)."""
        self._ddl_guard("drop_table")
        self._table(name)  # existence check
        self.wal.append(("drop_table", name))
        del self.tables[name]
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]

    def create_index(self, table: str, column: str, kind: str = "hash") -> None:
        """Create (and backfill) a secondary index on table.column."""
        self._ddl_guard("create_index")
        tbl = self._table(table)
        tbl.schema.index_of(column)  # validates the column exists
        if (table, column) in self._indexes:
            raise DatabaseError(f"index on {table}.{column} already exists")
        if kind == "hash":
            index: Any = HashIndex(table, column)
        elif kind == "sorted":
            index = SortedIndex(table, column)
        else:
            raise DatabaseError(f"unknown index kind {kind!r}")
        self.wal.append(("create_index", table, column, kind))
        col_pos = tbl.schema.index_of(column)
        for rowid, row in tbl.scan():
            index.add(row[col_pos], rowid)
        self._indexes[(table, column)] = index

    # ------------------------------------------------------------ transactions

    def begin(self) -> int:
        """Start an explicit transaction; returns its id."""
        if self._active_txn is not None:
            raise TransactionError("a transaction is already active")
        txn = next(self._txn_counter)
        self._active_txn = txn
        self._undo = []
        self.wal.append(("begin", txn))
        return txn

    def commit(self) -> None:
        """Commit the active transaction."""
        if self._active_txn is None:
            raise TransactionError("no active transaction")
        self.wal.append(("commit", self._active_txn))
        self._active_txn = None
        self._undo = []
        # The staged pre-images become permanent history at the old
        # watermark; open snapshots keep reading them.
        self._commit_seq += 1
        self._txn_touched = set()
        self._prune_versions()

    def rollback(self) -> None:
        """Abort the active transaction, undoing its changes in memory."""
        if self._active_txn is None:
            raise TransactionError("no active transaction")
        self.wal.append(("abort", self._active_txn))
        for entry in reversed(self._undo):
            op = entry[0]
            if op == "insert":
                _, table, rowid = entry
                row = self.tables[table].delete(rowid)
                self._index_remove(table, rowid, row)
            elif op == "delete":
                _, table, rowid, old = entry
                self.tables[table].restore(rowid, old)
                self._index_add(table, rowid, old)
            elif op == "update":
                _, table, rowid, old, new = entry
                self.tables[table].update(rowid, old)
                self._index_remove(table, rowid, new)
                self._index_add(table, rowid, old)
        # Discard the pre-images this txn staged: the heap already holds
        # the restored (committed) values again.
        for table, rowid in self._txn_touched:
            tbl = self.tables.get(table)
            if tbl is not None:
                tbl.discard_version(rowid, self._commit_seq)
        self._txn_touched = set()
        self._active_txn = None
        self._undo = []

    @contextmanager
    def transaction(self):
        """``with db.transaction():`` — commit on success, rollback on error."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        else:
            self.commit()

    def _txn_scope(self):
        """Implicit autocommit wrapper for single statements."""
        if self._active_txn is not None:
            return _null_context()
        return self.transaction()

    # ------------------------------------------------------------------ DML

    def insert(self, table: str, row: Sequence[Any]) -> int:
        """Insert *row* into *table*, returning the new rowid."""
        tbl = self._table(table)
        with self._txn_scope():
            rowid = tbl.insert(row)
            stored = tbl.get(rowid)
            self._save_preimage(table, rowid, None)
            self.wal.append(("insert", self._active_txn, table, rowid,
                             list(stored)))
            self._undo.append(("insert", table, rowid))
            self._index_add(table, rowid, stored)
        return rowid

    def delete_where(self, table: str, predicate: Optional[Predicate] = None) -> int:
        """Delete matching rows; returns the count removed."""
        tbl = self._table(table)
        victims = [rowid for rowid, row in tbl.scan()
                   if predicate is None or predicate(self._as_dict(tbl, row))]
        with self._txn_scope():
            for rowid in victims:
                old = tbl.delete(rowid)
                self._save_preimage(table, rowid, old)
                self.wal.append(("delete", self._active_txn, table, rowid,
                                 list(old)))
                self._undo.append(("delete", table, rowid, old))
                self._index_remove(table, rowid, old)
        return len(victims)

    def update_where(self, table: str,
                     updates: Dict[str, Any],
                     predicate: Optional[Predicate] = None) -> int:
        """Set columns on matching rows; returns the count changed."""
        tbl = self._table(table)
        positions = {col: tbl.schema.index_of(col) for col in updates}
        targets = [rowid for rowid, row in tbl.scan()
                   if predicate is None or predicate(self._as_dict(tbl, row))]
        with self._txn_scope():
            for rowid in targets:
                old = tbl.get(rowid)
                new = list(old)
                for col, value in updates.items():
                    new[positions[col]] = value
                self._save_preimage(table, rowid, old)
                tbl.update(rowid, new)
                stored = tbl.get(rowid)
                self.wal.append(("update", self._active_txn, table, rowid,
                                 list(old), list(stored)))
                self._undo.append(("update", table, rowid, old, stored))
                self._index_remove(table, rowid, old)
                self._index_add(table, rowid, stored)
        return len(targets)

    # ---------------------------------------------------------------- queries

    def select(self, table: str, predicate: Optional[Predicate] = None,
               columns: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
        """Rows (as dicts) matching *predicate*, optionally projected."""
        tbl = self._table(table)
        out = []
        for _rowid, row in tbl.scan():
            self.stats["rows_scanned"] += 1
            record = self._as_dict(tbl, row)
            if predicate is None or predicate(record):
                if columns is not None:
                    record = {c: record[c] for c in columns}
                out.append(record)
        return out

    def find_eq(self, table: str, column: str, value: Any) -> List[Dict[str, Any]]:
        """Equality lookup, via index when one exists."""
        tbl = self._table(table)
        index = self._indexes.get((table, column))
        if isinstance(index, HashIndex):
            rowids = sorted(index.find(value))
            self.stats["index_rows"] += len(rowids)
            return [self._as_dict(tbl, tbl.get(r)) for r in rowids]
        if isinstance(index, SortedIndex) and value is not None:
            try:
                rowids = sorted(index.range(value, value))
            except TypeError:
                rowids = None  # uncomparable literal; fall back to a scan
            if rowids is not None:
                self.stats["index_rows"] += len(rowids)
                return [self._as_dict(tbl, tbl.get(r)) for r in rowids]
        col_pos = tbl.schema.index_of(column)
        out = []
        for _r, row in tbl.scan():
            self.stats["rows_scanned"] += 1
            if row[col_pos] == value:
                out.append(self._as_dict(tbl, row))
        return out

    def find_range(self, table: str, column: str,
                   lo: Any = None, hi: Any = None,
                   lo_open: bool = False,
                   hi_open: bool = False) -> List[Dict[str, Any]]:
        """Range lookup, via a sorted index when one exists.

        Bounds follow SQL semantics: ``None`` column values never match,
        ``lo_open``/``hi_open`` exclude the endpoint.  Results come back
        in rowid order (matching a heap scan).
        """
        tbl = self._table(table)
        index = self._indexes.get((table, column))
        if isinstance(index, SortedIndex):
            try:
                rowids = sorted(index.range(lo, hi, lo_open, hi_open))
            except TypeError:
                rowids = None  # uncomparable bound; fall back to a scan
            if rowids is not None:
                self.stats["index_rows"] += len(rowids)
                return [self._as_dict(tbl, tbl.get(r)) for r in rowids]
        col_pos = tbl.schema.index_of(column)
        out = []
        for _r, row in tbl.scan():
            self.stats["rows_scanned"] += 1
            v = row[col_pos]
            if v is None:
                continue
            try:
                if lo is not None and (v < lo or (lo_open and v == lo)):
                    continue
                if hi is not None and (v > hi or (hi_open and v == hi)):
                    continue
            except TypeError:
                continue  # SQL three-valued logic, collapsed to no-match
            out.append(self._as_dict(tbl, row))
        return out

    def get_by_pk(self, table: str, key: Any) -> Dict[str, Any]:
        """Primary-key point lookup."""
        tbl = self._table(table)
        if tbl.schema.primary_key is None:
            raise DatabaseError(f"table {table!r} has no primary key")
        rowid = tbl.lookup_pk(key)
        if rowid is None:
            raise RecordNotFound(f"{table}: no row with pk {key!r}")
        return self._as_dict(tbl, tbl.get(rowid))

    def count(self, table: str) -> int:
        return len(self._table(table))

    def snapshot(self) -> "Snapshot":
        """Open a read handle pinned to the last committed state.

        With MVCC enabled the handle ignores every mutation staged by an
        open writer transaction (and any commit after the handle was
        opened).  Without MVCC it simply reads current state.  Close it
        (or use ``with``) so version chains can be pruned.
        """
        return Snapshot(self)

    # ----------------------------------------------------------- persistence

    def checkpoint(self) -> None:
        """Compact the WAL: rewrite it as a snapshot of current state."""
        if self._active_txn is not None:
            raise TransactionError("cannot checkpoint inside a transaction")
        self.wal.reset()
        for name, tbl in self.tables.items():
            self.wal.append((
                "create_table", name,
                [[c.name, c.type, int(c.nullable), int(c.primary_key)]
                 for c in tbl.schema.columns],
            ))
        for (table, column), index in self._indexes.items():
            kind = "hash" if isinstance(index, HashIndex) else "sorted"
            self.wal.append(("create_index", table, column, kind))
        txn = next(self._txn_counter)
        self.wal.append(("begin", txn))
        for name, tbl in self.tables.items():
            for rowid, row in tbl.scan():
                self.wal.append(("insert", txn, name, rowid, list(row)))
        self.wal.append(("commit", txn))

    @classmethod
    def recover(cls, wal_image: bytes, mvcc: bool = False) -> "Database":
        """Rebuild a database from a WAL image (crash recovery).

        DDL is replayed unconditionally; DML only for transactions whose
        commit record survives.
        """
        log = WriteAheadLog(wal_image)
        records = list(log.records())
        committed: Set[int] = {r[1] for r in records if r[0] == "commit"}

        db = cls(wal=WriteAheadLog(), mvcc=mvcc)
        max_txn = 0
        for record in records:
            op = record[0]
            if op == "create_table":
                _, name, cols = record
                columns = [Column(n, t, nullable=bool(nl), primary_key=bool(pk))
                           for n, t, nl, pk in cols]
                db.create_table(name, columns)
            elif op == "drop_table":
                if record[1] in db.tables:
                    db.drop_table(record[1])
            elif op == "create_index":
                _, table, column, kind = record
                if (table, column) not in db._indexes and table in db.tables:
                    db.create_index(table, column, kind)
            elif op in ("begin", "commit", "abort"):
                max_txn = max(max_txn, record[1])
            elif op == "insert":
                _, txn, table, rowid, values = record
                max_txn = max(max_txn, txn)
                if txn in committed and table in db.tables:
                    tbl = db.tables[table]
                    tbl.restore(rowid, tbl.schema.validate_row(values))
                    db._index_add(table, rowid, tuple(values))
            elif op == "delete":
                _, txn, table, rowid, _old = record
                max_txn = max(max_txn, txn)
                if txn in committed and table in db.tables:
                    old = db.tables[table].delete(rowid)
                    db._index_remove(table, rowid, old)
            elif op == "update":
                _, txn, table, rowid, old, new = record
                max_txn = max(max_txn, txn)
                if txn in committed and table in db.tables:
                    db.tables[table].update(rowid, new)
                    db._index_remove(table, rowid, tuple(old))
                    db._index_add(table, rowid, tuple(new))
        db._txn_counter = itertools.count(max_txn + 1)
        # The recovered database starts a fresh log reflecting its state.
        db.checkpoint()
        return db

    # ----------------------------------------------------------------- internals

    def _save_preimage(self, table: str, rowid: int,
                       old_row: Optional[Tuple[Any, ...]]) -> None:
        """Stage the committed image of a row on its first touch in a txn."""
        if not self.mvcc or self._active_txn is None:
            return
        key = (table, rowid)
        if key in self._txn_touched:
            return
        self._txn_touched.add(key)
        self.tables[table].save_version(rowid, self._commit_seq, old_row)

    def _prune_versions(self) -> None:
        """Drop version history no open snapshot can still need."""
        if not self.mvcc:
            return
        watermark = min((s.watermark for s in self._snapshots),
                        default=self._commit_seq)
        for tbl in self.tables.values():
            if tbl.has_versions():
                tbl.prune_versions(watermark)

    def _table(self, name: str) -> HeapTable:
        try:
            return self.tables[name]
        except KeyError:
            raise DatabaseError(f"no such table {name!r}") from None

    @staticmethod
    def _as_dict(tbl: HeapTable, row: Tuple[Any, ...]) -> Dict[str, Any]:
        return dict(zip(tbl.schema.names(), row))

    def _index_add(self, table: str, rowid: int, row: Tuple[Any, ...]) -> None:
        tbl = self.tables[table]
        for (tname, column), index in self._indexes.items():
            if tname == table:
                index.add(row[tbl.schema.index_of(column)], rowid)

    def _index_remove(self, table: str, rowid: int, row: Tuple[Any, ...]) -> None:
        tbl = self.tables.get(table)
        if tbl is None:
            return
        for (tname, column), index in self._indexes.items():
            if tname == table:
                index.remove(row[tbl.schema.index_of(column)], rowid)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Database tables={sorted(self.tables)}>"


class Snapshot:
    """A read-only view of the last committed database state.

    Opened via :meth:`Database.snapshot`.  The handle resolves each row
    through the table's version chain at its pinned watermark, so writes
    staged by an open transaction — and commits that land after the
    handle was opened — are invisible.  Reads fall back to the plain
    (indexed) paths whenever a table has no version history, so the
    uncontended case stays O(index lookup).
    """

    def __init__(self, db: Database):
        self._db = db
        #: Commit-sequence this handle is pinned to.
        self.watermark = db._commit_seq
        self.closed = False
        db._snapshots.append(self)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._db._snapshots.remove(self)
            self._db._prune_versions()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False

    # -- reads -------------------------------------------------------------

    def _iter_rows(self, tbl: HeapTable):
        """(rowid, row) pairs visible at the watermark, in rowid order."""
        if not self._db.mvcc or not tbl.has_versions():
            yield from tbl.scan()
            return
        for rowid in sorted(tbl.versioned_ids()):
            row = tbl.visible_row(rowid, self.watermark)
            if row is not None:
                yield rowid, row

    def select(self, table: str, predicate: Optional[Predicate] = None,
               columns: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
        """Snapshot-visible rows matching *predicate*."""
        db = self._db
        db.stats["snapshot_reads"] += 1
        tbl = db._table(table)
        out = []
        for _rowid, row in self._iter_rows(tbl):
            db.stats["rows_scanned"] += 1
            record = db._as_dict(tbl, row)
            if predicate is None or predicate(record):
                if columns is not None:
                    record = {c: record[c] for c in columns}
                out.append(record)
        return out

    def find_eq(self, table: str, column: str,
                value: Any) -> List[Dict[str, Any]]:
        """Equality lookup against the snapshot.

        Falls back to a resolved scan when version history exists for
        the table: secondary indexes reflect uncommitted writes, so they
        cannot serve a snapshot directly.
        """
        db = self._db
        tbl = db._table(table)
        if not db.mvcc or not tbl.has_versions():
            db.stats["snapshot_reads"] += 1
            return db.find_eq(table, column, value)
        db.stats["snapshot_reads"] += 1
        col_pos = tbl.schema.index_of(column)
        out = []
        for _rowid, row in self._iter_rows(tbl):
            db.stats["rows_scanned"] += 1
            if row[col_pos] == value:
                out.append(db._as_dict(tbl, row))
        return out

    def get_by_pk(self, table: str, key: Any) -> Dict[str, Any]:
        """Primary-key point lookup against the snapshot."""
        db = self._db
        tbl = db._table(table)
        if not db.mvcc or not tbl.has_versions():
            db.stats["snapshot_reads"] += 1
            return db.get_by_pk(table, key)
        db.stats["snapshot_reads"] += 1
        pk = tbl.schema.primary_key
        if pk is None:
            raise DatabaseError(f"table {table!r} has no primary key")
        pk_pos = tbl.schema.index_of(pk.name)
        for _rowid, row in self._iter_rows(tbl):
            db.stats["rows_scanned"] += 1
            if row[pk_pos] == key:
                return db._as_dict(tbl, row)
        raise RecordNotFound(f"{table}: no row with pk {key!r}")

    def count(self, table: str) -> int:
        """Snapshot-visible row count."""
        db = self._db
        db.stats["snapshot_reads"] += 1
        tbl = db._table(table)
        if not db.mvcc or not tbl.has_versions():
            return len(tbl)
        return sum(1 for _ in self._iter_rows(tbl))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "closed" if self.closed else "open"
        return f"<Snapshot @{self.watermark} {state}>"


@contextmanager
def _null_context():
    yield
