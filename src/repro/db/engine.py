"""The database engine: tables + indexes + WAL + transactions.

Concurrency model: single writer, serialized transactions (matching the
way onServe's DbManager used its MySQL connection).  Every mutation is
logged to the write-ahead log *before* being applied, so a crash at any
byte boundary recovers to the last committed transaction.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DatabaseError, RecordNotFound, TransactionError
from repro.db.index import HashIndex, SortedIndex
from repro.db.table import Column, HeapTable, Schema
from repro.db.wal import WriteAheadLog

__all__ = ["Database"]

Predicate = Callable[[Dict[str, Any]], bool]


class Database:
    """An embedded single-writer relational database."""

    def __init__(self, wal: Optional[WriteAheadLog] = None):
        self.wal = wal if wal is not None else WriteAheadLog()
        self.tables: Dict[str, HeapTable] = {}
        self._indexes: Dict[Tuple[str, str], Any] = {}
        self._txn_counter = itertools.count(1)
        self._active_txn: Optional[int] = None
        self._undo: List[Tuple] = []

    # ------------------------------------------------------------------ DDL

    def create_table(self, name: str, columns: Sequence[Column]) -> None:
        """Create a table (autocommitted DDL)."""
        if name in self.tables:
            raise DatabaseError(f"table {name!r} already exists")
        schema = Schema(columns)
        self.wal.append((
            "create_table", name,
            [[c.name, c.type, int(c.nullable), int(c.primary_key)]
             for c in schema.columns],
        ))
        self.tables[name] = HeapTable(name, schema)

    def drop_table(self, name: str) -> None:
        """Drop a table and its indexes (autocommitted DDL)."""
        self._table(name)  # existence check
        self.wal.append(("drop_table", name))
        del self.tables[name]
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]

    def create_index(self, table: str, column: str, kind: str = "hash") -> None:
        """Create (and backfill) a secondary index on table.column."""
        tbl = self._table(table)
        tbl.schema.index_of(column)  # validates the column exists
        if (table, column) in self._indexes:
            raise DatabaseError(f"index on {table}.{column} already exists")
        if kind == "hash":
            index: Any = HashIndex(table, column)
        elif kind == "sorted":
            index = SortedIndex(table, column)
        else:
            raise DatabaseError(f"unknown index kind {kind!r}")
        self.wal.append(("create_index", table, column, kind))
        col_pos = tbl.schema.index_of(column)
        for rowid, row in tbl.scan():
            index.add(row[col_pos], rowid)
        self._indexes[(table, column)] = index

    # ------------------------------------------------------------ transactions

    def begin(self) -> int:
        """Start an explicit transaction; returns its id."""
        if self._active_txn is not None:
            raise TransactionError("a transaction is already active")
        txn = next(self._txn_counter)
        self._active_txn = txn
        self._undo = []
        self.wal.append(("begin", txn))
        return txn

    def commit(self) -> None:
        """Commit the active transaction."""
        if self._active_txn is None:
            raise TransactionError("no active transaction")
        self.wal.append(("commit", self._active_txn))
        self._active_txn = None
        self._undo = []

    def rollback(self) -> None:
        """Abort the active transaction, undoing its changes in memory."""
        if self._active_txn is None:
            raise TransactionError("no active transaction")
        self.wal.append(("abort", self._active_txn))
        for entry in reversed(self._undo):
            op = entry[0]
            if op == "insert":
                _, table, rowid = entry
                row = self.tables[table].delete(rowid)
                self._index_remove(table, rowid, row)
            elif op == "delete":
                _, table, rowid, old = entry
                self.tables[table].restore(rowid, old)
                self._index_add(table, rowid, old)
            elif op == "update":
                _, table, rowid, old, new = entry
                self.tables[table].update(rowid, old)
                self._index_remove(table, rowid, new)
                self._index_add(table, rowid, old)
        self._active_txn = None
        self._undo = []

    @contextmanager
    def transaction(self):
        """``with db.transaction():`` — commit on success, rollback on error."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        else:
            self.commit()

    def _txn_scope(self):
        """Implicit autocommit wrapper for single statements."""
        if self._active_txn is not None:
            return _null_context()
        return self.transaction()

    # ------------------------------------------------------------------ DML

    def insert(self, table: str, row: Sequence[Any]) -> int:
        """Insert *row* into *table*, returning the new rowid."""
        tbl = self._table(table)
        with self._txn_scope():
            rowid = tbl.insert(row)
            stored = tbl.get(rowid)
            self.wal.append(("insert", self._active_txn, table, rowid,
                             list(stored)))
            self._undo.append(("insert", table, rowid))
            self._index_add(table, rowid, stored)
        return rowid

    def delete_where(self, table: str, predicate: Optional[Predicate] = None) -> int:
        """Delete matching rows; returns the count removed."""
        tbl = self._table(table)
        victims = [rowid for rowid, row in tbl.scan()
                   if predicate is None or predicate(self._as_dict(tbl, row))]
        with self._txn_scope():
            for rowid in victims:
                old = tbl.delete(rowid)
                self.wal.append(("delete", self._active_txn, table, rowid,
                                 list(old)))
                self._undo.append(("delete", table, rowid, old))
                self._index_remove(table, rowid, old)
        return len(victims)

    def update_where(self, table: str,
                     updates: Dict[str, Any],
                     predicate: Optional[Predicate] = None) -> int:
        """Set columns on matching rows; returns the count changed."""
        tbl = self._table(table)
        positions = {col: tbl.schema.index_of(col) for col in updates}
        targets = [rowid for rowid, row in tbl.scan()
                   if predicate is None or predicate(self._as_dict(tbl, row))]
        with self._txn_scope():
            for rowid in targets:
                old = tbl.get(rowid)
                new = list(old)
                for col, value in updates.items():
                    new[positions[col]] = value
                tbl.update(rowid, new)
                stored = tbl.get(rowid)
                self.wal.append(("update", self._active_txn, table, rowid,
                                 list(old), list(stored)))
                self._undo.append(("update", table, rowid, old, stored))
                self._index_remove(table, rowid, old)
                self._index_add(table, rowid, stored)
        return len(targets)

    # ---------------------------------------------------------------- queries

    def select(self, table: str, predicate: Optional[Predicate] = None,
               columns: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
        """Rows (as dicts) matching *predicate*, optionally projected."""
        tbl = self._table(table)
        out = []
        for _rowid, row in tbl.scan():
            record = self._as_dict(tbl, row)
            if predicate is None or predicate(record):
                if columns is not None:
                    record = {c: record[c] for c in columns}
                out.append(record)
        return out

    def find_eq(self, table: str, column: str, value: Any) -> List[Dict[str, Any]]:
        """Equality lookup, via index when one exists."""
        tbl = self._table(table)
        index = self._indexes.get((table, column))
        if isinstance(index, HashIndex):
            rowids = sorted(index.find(value))
            return [self._as_dict(tbl, tbl.get(r)) for r in rowids]
        col_pos = tbl.schema.index_of(column)
        return [self._as_dict(tbl, row) for _r, row in tbl.scan()
                if row[col_pos] == value]

    def get_by_pk(self, table: str, key: Any) -> Dict[str, Any]:
        """Primary-key point lookup."""
        tbl = self._table(table)
        if tbl.schema.primary_key is None:
            raise DatabaseError(f"table {table!r} has no primary key")
        rowid = tbl.lookup_pk(key)
        if rowid is None:
            raise RecordNotFound(f"{table}: no row with pk {key!r}")
        return self._as_dict(tbl, tbl.get(rowid))

    def count(self, table: str) -> int:
        return len(self._table(table))

    # ----------------------------------------------------------- persistence

    def checkpoint(self) -> None:
        """Compact the WAL: rewrite it as a snapshot of current state."""
        if self._active_txn is not None:
            raise TransactionError("cannot checkpoint inside a transaction")
        self.wal.reset()
        for name, tbl in self.tables.items():
            self.wal.append((
                "create_table", name,
                [[c.name, c.type, int(c.nullable), int(c.primary_key)]
                 for c in tbl.schema.columns],
            ))
        for (table, column), index in self._indexes.items():
            kind = "hash" if isinstance(index, HashIndex) else "sorted"
            self.wal.append(("create_index", table, column, kind))
        txn = next(self._txn_counter)
        self.wal.append(("begin", txn))
        for name, tbl in self.tables.items():
            for rowid, row in tbl.scan():
                self.wal.append(("insert", txn, name, rowid, list(row)))
        self.wal.append(("commit", txn))

    @classmethod
    def recover(cls, wal_image: bytes) -> "Database":
        """Rebuild a database from a WAL image (crash recovery).

        DDL is replayed unconditionally; DML only for transactions whose
        commit record survives.
        """
        log = WriteAheadLog(wal_image)
        records = list(log.records())
        committed: Set[int] = {r[1] for r in records if r[0] == "commit"}

        db = cls(wal=WriteAheadLog())
        max_txn = 0
        for record in records:
            op = record[0]
            if op == "create_table":
                _, name, cols = record
                columns = [Column(n, t, nullable=bool(nl), primary_key=bool(pk))
                           for n, t, nl, pk in cols]
                db.create_table(name, columns)
            elif op == "drop_table":
                if record[1] in db.tables:
                    db.drop_table(record[1])
            elif op == "create_index":
                _, table, column, kind = record
                if (table, column) not in db._indexes and table in db.tables:
                    db.create_index(table, column, kind)
            elif op in ("begin", "commit", "abort"):
                max_txn = max(max_txn, record[1])
            elif op == "insert":
                _, txn, table, rowid, values = record
                max_txn = max(max_txn, txn)
                if txn in committed and table in db.tables:
                    tbl = db.tables[table]
                    tbl.restore(rowid, tbl.schema.validate_row(values))
                    db._index_add(table, rowid, tuple(values))
            elif op == "delete":
                _, txn, table, rowid, _old = record
                max_txn = max(max_txn, txn)
                if txn in committed and table in db.tables:
                    old = db.tables[table].delete(rowid)
                    db._index_remove(table, rowid, old)
            elif op == "update":
                _, txn, table, rowid, old, new = record
                max_txn = max(max_txn, txn)
                if txn in committed and table in db.tables:
                    db.tables[table].update(rowid, new)
                    db._index_remove(table, rowid, tuple(old))
                    db._index_add(table, rowid, tuple(new))
        db._txn_counter = itertools.count(max_txn + 1)
        # The recovered database starts a fresh log reflecting its state.
        db.checkpoint()
        return db

    # ----------------------------------------------------------------- internals

    def _table(self, name: str) -> HeapTable:
        try:
            return self.tables[name]
        except KeyError:
            raise DatabaseError(f"no such table {name!r}") from None

    @staticmethod
    def _as_dict(tbl: HeapTable, row: Tuple[Any, ...]) -> Dict[str, Any]:
        return dict(zip(tbl.schema.names(), row))

    def _index_add(self, table: str, rowid: int, row: Tuple[Any, ...]) -> None:
        tbl = self.tables[table]
        for (tname, column), index in self._indexes.items():
            if tname == table:
                index.add(row[tbl.schema.index_of(column)], rowid)

    def _index_remove(self, table: str, rowid: int, row: Tuple[Any, ...]) -> None:
        tbl = self.tables.get(table)
        if tbl is None:
            return
        for (tname, column), index in self._indexes.items():
            if tname == table:
                index.remove(row[tbl.schema.index_of(column)], rowid)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Database tables={sorted(self.tables)}>"


@contextmanager
def _null_context():
    yield
