"""A small SQL dialect over the engine: tokenizer, parser, executor.

Supported statements::

    CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL, data BLOB)
    DROP TABLE t
    CREATE INDEX ON t (name) USING HASH      -- or USING SORTED
    INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')
    SELECT *, or a column list, FROM t [WHERE expr] [ORDER BY col [DESC]] [LIMIT n]
    UPDATE t SET name = 'x' [, ...] [WHERE expr]
    DELETE FROM t [WHERE expr]
    BEGIN / COMMIT / ROLLBACK

WHERE expressions: comparisons (= != <> < <= > >=), AND/OR/NOT,
parentheses, IS [NOT] NULL, LIKE with %/_ wildcards.  Literals: integers,
reals, 'strings' (with '' escaping), X'68656c6c6f' blob literals, NULL.

The executor consults the engine's hash indexes for top-level equality
predicates, so ``SELECT ... WHERE name = 'x'`` on an indexed column skips
the full scan.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.db.engine import Database
from repro.db.index import HashIndex, SortedIndex
from repro.db.table import Column, TYPES
from repro.errors import SqlError

__all__ = ["execute_sql", "tokenize", "Parser"]

# ------------------------------------------------------------------ tokenizer

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<blob>[xX]'(?:[0-9a-fA-F]{2})*')
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\*|;)
    """,
    re.VERBOSE,
)

#: token kinds: KEYWORD, NAME, STRING, BLOB, INT, REAL, OP, END
_KEYWORDS = {
    "CREATE", "TABLE", "DROP", "INDEX", "ON", "USING", "HASH", "SORTED",
    "INSERT", "INTO", "VALUES", "SELECT", "FROM", "WHERE", "ORDER", "BY",
    "ASC", "DESC", "LIMIT", "UPDATE", "SET", "DELETE", "AND", "OR", "NOT",
    "NULL", "IS", "LIKE", "PRIMARY", "KEY", "BEGIN", "COMMIT", "ROLLBACK",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP",
}

#: Aggregate function keywords.
_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: Any, pos: int):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Token({self.kind}, {self.value!r})"


def tokenize(sql: str) -> List[Token]:
    """Split *sql* into tokens; raises :class:`SqlError` on bad input."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise SqlError(f"unexpected character {sql[pos]!r} at offset {pos}")
        kind = m.lastgroup
        text = m.group()
        if kind == "ws":
            pass
        elif kind == "string":
            tokens.append(Token("STRING", text[1:-1].replace("''", "'"), pos))
        elif kind == "blob":
            tokens.append(Token("BLOB", bytes.fromhex(text[2:-1]), pos))
        elif kind == "number":
            if "." in text:
                tokens.append(Token("REAL", float(text), pos))
            else:
                tokens.append(Token("INT", int(text), pos))
        elif kind == "name":
            upper = text.upper()
            if upper in _KEYWORDS:
                tokens.append(Token("KEYWORD", upper, pos))
            else:
                tokens.append(Token("NAME", text, pos))
        else:
            tokens.append(Token("OP", text, pos))
        pos = m.end()
    tokens.append(Token("END", None, pos))
    return tokens


# ------------------------------------------------------------------ expressions

class Expr:
    """Compiled boolean/value expression over a row dict."""

    def __init__(self, fn: Callable[[Dict[str, Any]], Any], repr_: str):
        self.fn = fn
        self.repr = repr_

    def __call__(self, row: Dict[str, Any]) -> Any:
        return self.fn(row)


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# ------------------------------------------------------------------ parser

class Parser:
    """Recursive-descent parser producing executable statement objects."""

    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept(self, kind: str, value: Any = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: Any = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            got = self.peek()
            want = value if value is not None else kind
            raise SqlError(f"expected {want}, got {got.value!r} at offset {got.pos}")
        return tok

    # -- statements -------------------------------------------------------------

    def parse(self) -> Dict[str, Any]:
        tok = self.peek()
        if tok.kind != "KEYWORD":
            raise SqlError(f"statement must start with a keyword, got {tok.value!r}")
        handler = {
            "CREATE": self._create,
            "DROP": self._drop,
            "INSERT": self._insert,
            "SELECT": self._select,
            "UPDATE": self._update,
            "DELETE": self._delete,
            "BEGIN": lambda: {"op": "begin"},
            "COMMIT": lambda: {"op": "commit"},
            "ROLLBACK": lambda: {"op": "rollback"},
        }.get(tok.value)
        if handler is None:
            raise SqlError(f"unsupported statement {tok.value}")
        if tok.value in ("BEGIN", "COMMIT", "ROLLBACK"):
            self.next()
        stmt = handler()
        self.accept("OP", ";")
        self.expect("END")
        return stmt

    def _create(self) -> Dict[str, Any]:
        self.expect("KEYWORD", "CREATE")
        if self.accept("KEYWORD", "INDEX"):
            self.expect("KEYWORD", "ON")
            table = self.expect("NAME").value
            self.expect("OP", "(")
            column = self.expect("NAME").value
            self.expect("OP", ")")
            kind = "hash"
            if self.accept("KEYWORD", "USING"):
                kind_tok = self.next()
                if kind_tok.value not in ("HASH", "SORTED"):
                    raise SqlError(f"unknown index kind {kind_tok.value!r}")
                kind = kind_tok.value.lower()
            return {"op": "create_index", "table": table, "column": column,
                    "kind": kind}
        self.expect("KEYWORD", "TABLE")
        name = self.expect("NAME").value
        self.expect("OP", "(")
        columns: List[Column] = []
        while True:
            col_name = self.expect("NAME").value
            type_tok = self.next()
            type_name = str(type_tok.value).upper()
            if type_name not in TYPES:
                raise SqlError(f"unknown type {type_tok.value!r}")
            primary = False
            nullable = True
            while True:
                if self.accept("KEYWORD", "PRIMARY"):
                    self.expect("KEYWORD", "KEY")
                    primary = True
                elif self.accept("KEYWORD", "NOT"):
                    self.expect("KEYWORD", "NULL")
                    nullable = False
                else:
                    break
            columns.append(Column(col_name, type_name, nullable=nullable,
                                  primary_key=primary))
            if not self.accept("OP", ","):
                break
        self.expect("OP", ")")
        return {"op": "create_table", "name": name, "columns": columns}

    def _drop(self) -> Dict[str, Any]:
        self.expect("KEYWORD", "DROP")
        self.expect("KEYWORD", "TABLE")
        return {"op": "drop_table", "name": self.expect("NAME").value}

    def _insert(self) -> Dict[str, Any]:
        self.expect("KEYWORD", "INSERT")
        self.expect("KEYWORD", "INTO")
        table = self.expect("NAME").value
        columns: Optional[List[str]] = None
        if self.accept("OP", "("):
            columns = [self.expect("NAME").value]
            while self.accept("OP", ","):
                columns.append(self.expect("NAME").value)
            self.expect("OP", ")")
        self.expect("KEYWORD", "VALUES")
        rows: List[List[Any]] = []
        while True:
            self.expect("OP", "(")
            row = [self._literal()]
            while self.accept("OP", ","):
                row.append(self._literal())
            self.expect("OP", ")")
            rows.append(row)
            if not self.accept("OP", ","):
                break
        return {"op": "insert", "table": table, "columns": columns, "rows": rows}

    def _select(self) -> Dict[str, Any]:
        self.expect("KEYWORD", "SELECT")
        columns: Optional[List[str]]
        aggregates: List[Tuple[str, str]] = []
        if self.accept("OP", "*"):
            columns = None
        else:
            items = [self._select_item()]
            while self.accept("OP", ","):
                items.append(self._select_item())
            plain = [item[1] for item in items if item[0] == "col"]
            aggregates = [(item[1], item[2]) for item in items
                          if item[0] == "agg"]
            columns = plain if (plain or not aggregates) else None
            if aggregates and columns is None:
                columns = []
        self.expect("KEYWORD", "FROM")
        table = self.expect("NAME").value
        where = self._where_clause()
        group_by: Optional[str] = None
        if self.accept("KEYWORD", "GROUP"):
            self.expect("KEYWORD", "BY")
            group_by = self.expect("NAME").value
        order_by: Optional[Tuple[str, bool]] = None
        if self.accept("KEYWORD", "ORDER"):
            self.expect("KEYWORD", "BY")
            col = self.expect("NAME").value
            descending = bool(self.accept("KEYWORD", "DESC"))
            if not descending:
                self.accept("KEYWORD", "ASC")
            order_by = (col, descending)
        limit: Optional[int] = None
        if self.accept("KEYWORD", "LIMIT"):
            limit = self.expect("INT").value
        if aggregates and group_by is None and columns:
            raise SqlError("plain columns next to aggregates need GROUP BY")
        if group_by is not None and not aggregates:
            raise SqlError("GROUP BY requires at least one aggregate")
        return {"op": "select", "table": table, "columns": columns,
                "aggregates": aggregates, "group_by": group_by,
                "where": where, "order_by": order_by, "limit": limit}

    def _select_item(self) -> Tuple[str, ...]:
        """One select-list item: a column, or AGG(column|*)."""
        tok = self.peek()
        if tok.kind == "KEYWORD" and tok.value in _AGGREGATES:
            func = self.next().value
            self.expect("OP", "(")
            if self.accept("OP", "*"):
                if func != "COUNT":
                    raise SqlError(f"{func}(*) is not valid; only COUNT(*)")
                arg = "*"
            else:
                arg = self.expect("NAME").value
            self.expect("OP", ")")
            return ("agg", func, arg)
        return ("col", self.expect("NAME").value)

    def _update(self) -> Dict[str, Any]:
        self.expect("KEYWORD", "UPDATE")
        table = self.expect("NAME").value
        self.expect("KEYWORD", "SET")
        updates: Dict[str, Any] = {}
        while True:
            col = self.expect("NAME").value
            self.expect("OP", "=")
            updates[col] = self._literal()
            if not self.accept("OP", ","):
                break
        return {"op": "update", "table": table, "updates": updates,
                "where": self._where_clause()}

    def _delete(self) -> Dict[str, Any]:
        self.expect("KEYWORD", "DELETE")
        self.expect("KEYWORD", "FROM")
        table = self.expect("NAME").value
        return {"op": "delete", "table": table, "where": self._where_clause()}

    def _where_clause(self) -> Optional[Expr]:
        if self.accept("KEYWORD", "WHERE"):
            return self._or_expr()
        return None

    # -- expression grammar: or -> and -> not -> predicate ------------------------

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self.accept("KEYWORD", "OR"):
            right = self._and_expr()
            l, r = left, right
            left = Expr(lambda row, l=l, r=r: bool(l(row)) or bool(r(row)),
                        f"({left.repr} OR {right.repr})")
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self.accept("KEYWORD", "AND"):
            right = self._not_expr()
            l, r = left, right
            left = Expr(lambda row, l=l, r=r: bool(l(row)) and bool(r(row)),
                        f"({left.repr} AND {right.repr})")
        return left

    def _not_expr(self) -> Expr:
        if self.accept("KEYWORD", "NOT"):
            inner = self._not_expr()
            return Expr(lambda row, i=inner: not bool(i(row)), f"(NOT {inner.repr})")
        return self._predicate()

    def _predicate(self) -> Expr:
        if self.accept("OP", "("):
            inner = self._or_expr()
            self.expect("OP", ")")
            return inner
        column = self.expect("NAME").value
        tok = self.peek()
        if tok.kind == "KEYWORD" and tok.value == "IS":
            self.next()
            negate = bool(self.accept("KEYWORD", "NOT"))
            self.expect("KEYWORD", "NULL")
            if negate:
                return Expr(lambda row, c=column: _col(row, c) is not None,
                            f"{column} IS NOT NULL")
            return Expr(lambda row, c=column: _col(row, c) is None,
                        f"{column} IS NULL")
        if tok.kind == "KEYWORD" and tok.value == "LIKE":
            self.next()
            pattern = self.expect("STRING").value
            regex = _like_to_regex(pattern)
            def like(row: Dict[str, Any], c=column, rx=regex) -> bool:
                v = _col(row, c)
                return isinstance(v, str) and rx.match(v) is not None
            return Expr(like, f"{column} LIKE {pattern!r}")
        if tok.kind == "OP" and tok.value in _COMPARATORS:
            op = self.next().value
            value = self._literal()
            cmp = _COMPARATORS[op]
            def compare(row: Dict[str, Any], c=column, v=value, f=cmp) -> bool:
                actual = _col(row, c)
                if actual is None or v is None:
                    return False  # SQL three-valued logic, collapsed to False
                try:
                    return f(actual, v)
                except TypeError:
                    return False
            expr = Expr(compare, f"{column} {op} {value!r}")
            # Expose simple comparisons for index routing.
            if op == "=":
                expr.eq_column = column  # type: ignore[attr-defined]
                expr.eq_value = value    # type: ignore[attr-defined]
            elif op in ("<", "<=", ">", ">=") and value is not None:
                expr.range_column = column  # type: ignore[attr-defined]
                expr.range_op = op          # type: ignore[attr-defined]
                expr.range_value = value    # type: ignore[attr-defined]
            return expr
        raise SqlError(f"bad predicate near {tok.value!r} at offset {tok.pos}")

    def _literal(self) -> Any:
        tok = self.next()
        if tok.kind in ("INT", "REAL", "STRING", "BLOB"):
            return tok.value
        if tok.kind == "KEYWORD" and tok.value == "NULL":
            return None
        raise SqlError(f"expected a literal, got {tok.value!r} at offset {tok.pos}")


def _col(row: Dict[str, Any], name: str) -> Any:
    try:
        return row[name]
    except KeyError:
        raise SqlError(f"no such column {name!r}") from None


# ------------------------------------------------------------------ executor

def execute_sql(db: Database, sql: str) -> Union[List[Dict[str, Any]], int, None]:
    """Parse and execute one SQL statement against *db*.

    Returns a list of row dicts for SELECT, an affected-row count for
    UPDATE/DELETE, the last rowid for INSERT, and ``None`` for DDL and
    transaction control.
    """
    stmt = Parser(sql).parse()
    op = stmt["op"]

    if op == "create_table":
        db.create_table(stmt["name"], stmt["columns"])
        return None
    if op == "drop_table":
        db.drop_table(stmt["name"])
        return None
    if op == "create_index":
        db.create_index(stmt["table"], stmt["column"], stmt["kind"])
        return None
    if op == "begin":
        db.begin()
        return None
    if op == "commit":
        db.commit()
        return None
    if op == "rollback":
        db.rollback()
        return None

    if op == "insert":
        table = db.tables.get(stmt["table"])
        if table is None:
            raise SqlError(f"no such table {stmt['table']!r}")
        names = table.schema.names()
        rowid = None
        for values in stmt["rows"]:
            if stmt["columns"] is not None:
                if len(values) != len(stmt["columns"]):
                    raise SqlError("VALUES arity does not match column list")
                mapping = dict(zip(stmt["columns"], values))
                unknown = set(mapping) - set(names)
                if unknown:
                    raise SqlError(f"unknown columns {sorted(unknown)}")
                row = [mapping.get(n) for n in names]
            else:
                row = list(values)
            rowid = db.insert(stmt["table"], row)
        return rowid

    if op == "select":
        where = stmt["where"]
        rows = _candidates(db, stmt["table"], where)
        if stmt.get("aggregates"):
            rows = _aggregate(rows, stmt["aggregates"], stmt["group_by"])
            if stmt["order_by"] is not None:
                col, descending = stmt["order_by"]
                rows.sort(key=lambda r: (r.get(col) is None, r.get(col)),
                          reverse=descending)
            if stmt["limit"] is not None:
                rows = rows[: stmt["limit"]]
            return rows
        if stmt["order_by"] is not None:
            col, descending = stmt["order_by"]
            rows.sort(key=lambda r: (r.get(col) is None, r.get(col)),
                      reverse=descending)
        if stmt["limit"] is not None:
            rows = rows[: stmt["limit"]]
        if stmt["columns"] is not None:
            missing = [c for c in stmt["columns"]
                       if rows and c not in rows[0]]
            if missing:
                raise SqlError(f"unknown columns {missing}")
            rows = [{c: r[c] for c in stmt["columns"]} for r in rows]
        return rows

    if op == "update":
        return db.update_where(stmt["table"], stmt["updates"],
                               stmt["where"].fn if stmt["where"] else None)
    if op == "delete":
        return db.delete_where(stmt["table"],
                               stmt["where"].fn if stmt["where"] else None)

    raise SqlError(f"unhandled statement {op!r}")  # pragma: no cover


def _aggregate(rows: List[Dict[str, Any]],
               aggregates: List[Tuple[str, str]],
               group_by: Optional[str]) -> List[Dict[str, Any]]:
    """Evaluate aggregate functions, optionally grouped.

    SQL semantics: aggregates ignore NULLs (COUNT(*) counts rows);
    without GROUP BY an empty input yields one row of COUNT=0 /
    others-NULL.
    """

    def evaluate(func: str, arg: str, group: List[Dict[str, Any]]) -> Any:
        if func == "COUNT" and arg == "*":
            return len(group)
        _checked(arg, group)
        values = [row[arg] for row in group if row.get(arg) is not None]
        if func == "COUNT":
            return len(values)
        if not values:
            return None
        if func == "SUM":
            return sum(values)
        if func == "AVG":
            return sum(values) / len(values)
        if func == "MIN":
            return min(values)
        return max(values)

    def _checked(arg: str, group: List[Dict[str, Any]]) -> str:
        if group and arg not in group[0]:
            raise SqlError(f"no such column {arg!r}")
        return arg

    def label(func: str, arg: str) -> str:
        return f"{func.lower()}({arg})"

    if group_by is None:
        return [{label(f, a): evaluate(f, a, rows) for f, a in aggregates}]
    groups: Dict[Any, List[Dict[str, Any]]] = {}
    for row in rows:
        groups.setdefault(_hashable_value(row[_checked(group_by, rows)]),
                          []).append(row)
    out = []
    for key in sorted(groups, key=lambda k: (k is None, k)):
        group = groups[key]
        record: Dict[str, Any] = {group_by: group[0][group_by]}
        for func, arg in aggregates:
            record[label(func, arg)] = evaluate(func, arg, group)
        out.append(record)
    return out


def _hashable_value(value: Any) -> Any:
    return bytes(value) if isinstance(value, bytearray) else value


def _candidates(db: Database, table: str,
                where: Optional[Expr]) -> List[Dict[str, Any]]:
    """Rows matching *where*, routed through an index when one fits.

    Top-level ``col = literal`` uses a hash (or sorted) index; a
    top-level ``col < / <= / > / >= literal`` range uses a sorted index.
    Everything else falls back to a predicate heap scan.
    """
    eq_col = getattr(where, "eq_column", None)
    if (eq_col is not None
            and isinstance(db._indexes.get((table, eq_col)),
                           (HashIndex, SortedIndex))):
        return db.find_eq(table, eq_col, where.eq_value)  # type: ignore[union-attr]
    range_col = getattr(where, "range_column", None)
    if (range_col is not None
            and isinstance(db._indexes.get((table, range_col)), SortedIndex)):
        op = where.range_op          # type: ignore[union-attr]
        value = where.range_value    # type: ignore[union-attr]
        if op in ("<", "<="):
            return db.find_range(table, range_col, hi=value,
                                 hi_open=(op == "<"))
        return db.find_range(table, range_col, lo=value,
                             lo_open=(op == ">"))
    return db.select(table, where.fn if where else None)
