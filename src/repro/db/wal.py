"""Write-ahead log with CRC-framed records and crash recovery.

Record framing on the wire::

    [4-byte little-endian payload length][4-byte CRC32][payload]

A torn tail (truncated record or bad checksum) marks the end of the
usable log, exactly as in real WAL recovery; everything before it is
replayed if (and only if) its transaction committed.

Payloads are encoded with a tiny self-describing binary format (no
pickle): type-tagged values composed into record tuples.
"""

from __future__ import annotations

import io
import struct
import zlib
from typing import Any, BinaryIO, Iterator, Tuple

from repro.errors import DatabaseError

__all__ = ["WriteAheadLog", "encode_value", "decode_value"]

# -- value codec -----------------------------------------------------------

_TAG_NONE = b"N"
_TAG_INT = b"I"
_TAG_REAL = b"R"
_TAG_TEXT = b"S"
_TAG_BLOB = b"B"
_TAG_LIST = b"L"


def encode_value(value: Any, out: io.BytesIO) -> None:
    """Append the binary encoding of *value* to *out*."""
    if value is None:
        out.write(_TAG_NONE)
    elif isinstance(value, bool):
        raise DatabaseError("booleans are not storable")
    elif isinstance(value, int):
        raw = str(value).encode()
        out.write(_TAG_INT + struct.pack("<I", len(raw)) + raw)
    elif isinstance(value, float):
        out.write(_TAG_REAL + struct.pack("<d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.write(_TAG_TEXT + struct.pack("<I", len(raw)) + raw)
    elif isinstance(value, (bytes, bytearray)):
        out.write(_TAG_BLOB + struct.pack("<I", len(value)) + bytes(value))
    elif isinstance(value, (list, tuple)):
        out.write(_TAG_LIST + struct.pack("<I", len(value)))
        for item in value:
            encode_value(item, out)
    else:
        raise DatabaseError(f"cannot encode {type(value).__name__}")


def decode_value(buf: BinaryIO) -> Any:
    """Decode one value from *buf* (inverse of :func:`encode_value`)."""
    tag = buf.read(1)
    if not tag:
        raise DatabaseError("truncated value")
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_INT:
        (n,) = struct.unpack("<I", _need(buf, 4))
        return int(_need(buf, n).decode())
    if tag == _TAG_REAL:
        (v,) = struct.unpack("<d", _need(buf, 8))
        return v
    if tag == _TAG_TEXT:
        (n,) = struct.unpack("<I", _need(buf, 4))
        return _need(buf, n).decode("utf-8")
    if tag == _TAG_BLOB:
        (n,) = struct.unpack("<I", _need(buf, 4))
        return _need(buf, n)
    if tag == _TAG_LIST:
        (n,) = struct.unpack("<I", _need(buf, 4))
        return [decode_value(buf) for _ in range(n)]
    raise DatabaseError(f"unknown value tag {tag!r}")


def _need(buf: BinaryIO, n: int) -> bytes:
    data = buf.read(n)
    if len(data) != n:
        raise DatabaseError("truncated value")
    return data


# -- the log -----------------------------------------------------------------

class WriteAheadLog:
    """An append-only record log over a bytes buffer.

    The log owns an in-memory ``bytearray`` by default (deterministic,
    fast, no filesystem involvement in simulations); pass ``data`` to
    recover an existing log image.
    """

    def __init__(self, data: bytes = b""):
        self._buf = bytearray(data)
        #: Optional pure observer, called as ``observer(delta, total)``
        #: after every size change (append/truncate/reset).  The WAL
        #: layer stays telemetry-free; :class:`~repro.db.dbmanager
        #: .DbManager` hangs the log-pressure gauge and ``wal.append``
        #: events off this hook.
        self.observer = None
        #: Record-level taps, each called as ``tap(record)`` after the
        #: frame is durable.  This is the replication hook: a
        #: :class:`~repro.db.replica.ReadReplica` registers a tap to
        #: ship the logical record stream.  Taps are pure (no sim
        #: events) and see records in exact append order.
        self.taps = []

    # -- writing --------------------------------------------------------------

    def append(self, record: Tuple[Any, ...]) -> int:
        """Append *record*; returns the encoded record size in bytes."""
        body = io.BytesIO()
        encode_value(list(record), body)
        payload = body.getvalue()
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        self._buf.extend(frame)
        if self.observer is not None:
            self.observer(len(frame), len(self._buf))
        for tap in self.taps:
            tap(record)
        return len(frame)

    def snapshot(self) -> bytes:
        """The full log image (for persistence or crash simulation)."""
        return bytes(self._buf)

    def size(self) -> int:
        return len(self._buf)

    def truncate(self, nbytes: int) -> None:
        """Chop the log to its first *nbytes* bytes (simulates a crash)."""
        before = len(self._buf)
        del self._buf[nbytes:]
        if self.observer is not None and len(self._buf) != before:
            self.observer(len(self._buf) - before, len(self._buf))

    def corrupt(self, offset: int) -> None:
        """Flip a byte at *offset* (simulates media corruption)."""
        if 0 <= offset < len(self._buf):
            self._buf[offset] ^= 0xFF

    def reset(self) -> None:
        """Discard all records (checkpoint complete)."""
        before = len(self._buf)
        self._buf.clear()
        if self.observer is not None and before:
            self.observer(-before, 0)

    # -- reading -----------------------------------------------------------------

    def records(self) -> Iterator[Tuple[Any, ...]]:
        """Yield records up to the first torn/corrupt frame.

        A damaged tail silently ends iteration — that is WAL recovery
        semantics, not an error.
        """
        pos = 0
        buf = self._buf
        while pos + 8 <= len(buf):
            length, crc = struct.unpack_from("<II", buf, pos)
            start = pos + 8
            end = start + length
            if end > len(buf):
                return  # torn tail
            payload = bytes(buf[start:end])
            if zlib.crc32(payload) != crc:
                return  # corrupt frame
            try:
                record = decode_value(io.BytesIO(payload))
            except DatabaseError:
                return
            yield tuple(record)
            pos = end

    def __len__(self) -> int:
        return sum(1 for _ in self.records())
