"""Embedded relational database (the paper's MySQL stand-in).

A small but real database engine, built from scratch:

* typed heap tables with schema validation (:mod:`repro.db.table`),
* secondary hash and sorted indexes (:mod:`repro.db.index`),
* a write-ahead log with CRC-framed records and crash recovery
  (:mod:`repro.db.wal`),
* transactions with rollback (:mod:`repro.db.engine`),
* a SQL dialect — CREATE TABLE / INSERT / SELECT / UPDATE / DELETE with
  WHERE, ORDER BY and LIMIT (:mod:`repro.db.sql`),
* and the :class:`~repro.db.dbmanager.DbManager` facade the paper's
  ``dataIO`` package provided: store/retrieve executables as compressed
  BLOBs, with the I/O and CPU costs of each operation charged to a
  simulated host.

The engine itself is *real software* operating on real bytes; only the
time each operation takes is simulated (by ``DbManager``), which is what
lets the scenario figures show DB-induced CPU and disk peaks.
"""

from repro.db.dbmanager import DbManager
from repro.db.engine import Database
from repro.db.sql import execute_sql
from repro.db.table import Column, Schema

__all__ = ["Database", "DbManager", "execute_sql", "Column", "Schema"]
