"""WAL-shipping read replicas and the bounded-staleness read router.

A :class:`ReadReplica` tails the primary's write-ahead log through the
record tap (:attr:`~repro.db.wal.WriteAheadLog.taps`) and applies the
logical record stream to its own :class:`~repro.db.engine.Database`
after a modeled propagation/apply *lag*.  Application is **lazy**: the
replica buffers shipped records with their ship timestamps and replays
everything that has become due when a reader calls :meth:`catch_up`.
That keeps replication pure bookkeeping — it schedules no simulation
events, so an attached-but-disabled (or even enabled-but-unread)
replica can never perturb a faithful timeline.

The :class:`ReadRouter` decides, per read, whether a replica may serve
a table.  The guard is conservative: a replica is eligible only when
the table's newest primary write is at least one lag interval old —
i.e. when every write to that table has provably been applied.  Two
properties fall out by construction:

* **bounded staleness** — nothing a replica serves is ever older than
  the modeled lag (a younger write forces the read back to the
  primary);
* **read-your-writes** — an uploader that just wrote a table reads it
  from the primary until the replica has caught up, for *any*
  principal (strictly stronger than per-principal tracking).

Transactions replicate atomically: shipped DML is staged per txn and
applied only when the matching ``commit`` record becomes due, exactly
mirroring :meth:`Database.recover` semantics.  Aborted transactions
are dropped.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.db.engine import Database
from repro.errors import DatabaseError

__all__ = ["ReadReplica", "ReadRouter"]


class ReadReplica:
    """A lagged, WAL-fed, read-only copy of a primary database."""

    def __init__(self, sim, primary: Database, lag: float = 0.5,
                 name: str = "db-replica-1", enabled: bool = True):
        if lag < 0:
            raise DatabaseError(f"replica lag must be >= 0, got {lag}")
        self.sim = sim
        self.primary = primary
        self.lag = float(lag)
        self.name = name
        #: Disabled replicas tap nothing and stay provably empty.
        self.enabled = enabled
        #: The replica's own database (never written by callers).
        self.db = Database()
        # Shipped-but-not-yet-applied records: (ship_ts, record).
        self._pending: Deque[Tuple[float, Tuple[Any, ...]]] = deque()
        # DML staged per in-flight transaction id.
        self._staged: Dict[int, List[Tuple[Any, ...]]] = {}
        self.records_applied = 0
        self.txns_applied = 0
        #: Ship timestamp of the newest applied record.
        self.applied_ts = 0.0
        if enabled:
            self._bootstrap()
        primary.wal.taps.append(self._tap)

    # -- shipping ----------------------------------------------------------

    def _bootstrap(self) -> None:
        """Initial sync: replay the primary's current WAL image."""
        if self.primary._active_txn is not None:
            raise DatabaseError(
                f"{self.name}: cannot attach mid-transaction")
        image = self.primary.wal.snapshot()
        if image:
            self.db = Database.recover(image)

    def _tap(self, record: Tuple[Any, ...]) -> None:
        if self.enabled:
            self._pending.append((self.sim.now, record))

    def backlog(self) -> int:
        """Shipped records not yet applied."""
        return len(self._pending)

    def catch_up(self, now: Optional[float] = None) -> int:
        """Apply every shipped record whose lag has elapsed by *now*."""
        now = self.sim.now if now is None else now
        applied = 0
        while self._pending and self._pending[0][0] + self.lag <= now:
            ts, record = self._pending.popleft()
            self._apply(record)
            self.applied_ts = ts
            self.records_applied += 1
            applied += 1
        return applied

    def lag_behind(self, now: Optional[float] = None) -> float:
        """Seconds of ship-time not yet applied (< lag by construction)."""
        now = self.sim.now if now is None else now
        self.catch_up(now)
        if not self._pending:
            return 0.0
        return max(0.0, now - self._pending[0][0])

    # -- log application ---------------------------------------------------

    def _apply(self, record: Tuple[Any, ...]) -> None:
        op = record[0]
        if op == "create_table":
            from repro.db.table import Column
            _, name, cols = record
            if name not in self.db.tables:
                self.db.create_table(name, [
                    Column(n, t, nullable=bool(nl), primary_key=bool(pk))
                    for n, t, nl, pk in cols])
        elif op == "drop_table":
            if record[1] in self.db.tables:
                self.db.drop_table(record[1])
        elif op == "create_index":
            _, table, column, kind = record
            if (table, column) not in self.db._indexes \
                    and table in self.db.tables:
                self.db.create_index(table, column, kind)
        elif op == "begin":
            self._staged[record[1]] = []
        elif op in ("insert", "delete", "update"):
            staged = self._staged.get(record[1])
            if staged is not None:
                staged.append(record)
        elif op == "commit":
            for dml in self._staged.pop(record[1], ()):
                self._apply_dml(dml)
            self.txns_applied += 1
        elif op == "abort":
            self._staged.pop(record[1], None)

    def _apply_dml(self, record: Tuple[Any, ...]) -> None:
        op, _txn, table = record[0], record[1], record[2]
        if table not in self.db.tables:
            return
        tbl = self.db.tables[table]
        if op == "insert":
            _, _, _, rowid, values = record
            if rowid in tbl._rows:  # re-shipped frame; replace
                old = tbl.delete(rowid)
                self.db._index_remove(table, rowid, old)
            tbl.restore(rowid, tbl.schema.validate_row(values))
            self.db._index_add(table, rowid, tuple(values))
        elif op == "delete":
            _, _, _, rowid, _old = record
            if rowid in tbl._rows:
                old = tbl.delete(rowid)
                self.db._index_remove(table, rowid, old)
        elif op == "update":
            _, _, _, rowid, old, new = record
            if rowid in tbl._rows:
                tbl.update(rowid, new)
                self.db._index_remove(table, rowid, tuple(old))
                self.db._index_add(table, rowid, tuple(new))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "on" if self.enabled else "off"
        return (f"<ReadReplica {self.name} {state} lag={self.lag} "
                f"backlog={self.backlog()}>")


class ReadRouter:
    """Routes read-only table access to caught-up replicas.

    ``reader(table)`` hands back a database to read *table* from: a
    replica when the freshness guard holds, the primary otherwise.
    The router learns write recency from its own WAL tap, so it needs
    no cooperation from writers.
    """

    def __init__(self, sim, primary: Database,
                 replicas: Tuple[ReadReplica, ...] = (),
                 lag: float = 0.5):
        self.sim = sim
        self.primary = primary
        self.replicas = list(replicas)
        self.lag = float(lag)
        # table -> sim time of its newest primary write (DML or DDL).
        self._last_write: Dict[str, float] = {}
        # txn id -> tables it touched (commit re-stamps them, because a
        # replica only applies a txn once the *commit* record is due).
        self._txn_tables: Dict[int, set] = {}
        self._rr = 0
        self.replica_reads = 0
        self.primary_reads = 0
        primary.wal.taps.append(self._observe)

    def _observe(self, record: Tuple[Any, ...]) -> None:
        op = record[0]
        now = self.sim.now
        if op in ("insert", "delete", "update"):
            self._last_write[record[2]] = now
            self._txn_tables.setdefault(record[1], set()).add(record[2])
        elif op in ("create_table", "drop_table", "create_index"):
            self._last_write[record[1]] = now
        elif op == "commit":
            for table in self._txn_tables.pop(record[1], ()):
                self._last_write[table] = now
        elif op == "abort":
            self._txn_tables.pop(record[1], None)

    def fresh_for(self, table: str, now: Optional[float] = None) -> bool:
        """Has every primary write to *table* had time to replicate?"""
        now = self.sim.now if now is None else now
        last = self._last_write.get(table)
        return last is None or last + self.lag <= now

    def reader(self, table: str) -> Database:
        """A database suitable for a read-only op on *table* right now."""
        now = self.sim.now
        live = [r for r in self.replicas if r.enabled]
        if live and self.fresh_for(table, now):
            replica = live[self._rr % len(live)]
            self._rr += 1
            replica.catch_up(now)
            if table in replica.db.tables:
                self.replica_reads += 1
                self._note_replica_read(table, replica, now)
                return replica.db
        self.primary_reads += 1
        return self.primary

    def _note_replica_read(self, table: str, replica: ReadReplica,
                           now: float) -> None:
        # Lazy import: the db layer must not hard-depend on telemetry.
        from repro.telemetry.events import bus
        from repro.telemetry.gauges import gauges
        behind = replica.lag_behind(now)
        bus(self.sim).emit("db.replica.read", layer="db", table=table,
                           target=replica.name, behind=behind,
                           lag_bound=self.lag)
        gauges(self.sim).gauge("db.replica_lag", unit="s").set(behind)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<ReadRouter replicas={len(self.replicas)} "
                f"replica_reads={self.replica_reads} "
                f"primary_reads={self.primary_reads}>")
