"""Typed heap tables with schema validation."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DatabaseError, RecordNotFound

__all__ = ["Column", "Schema", "HeapTable", "TYPES"]

#: SQL type name -> python validator.
TYPES = {
    "INT": (int,),
    "REAL": (int, float),
    "TEXT": (str,),
    "BLOB": (bytes, bytearray),
}


class Column:
    """One column: name, SQL type, nullability, primary-key flag."""

    __slots__ = ("name", "type", "nullable", "primary_key")

    def __init__(self, name: str, type: str, nullable: bool = True,
                 primary_key: bool = False):
        type = type.upper()
        if type not in TYPES:
            raise DatabaseError(f"unknown column type {type!r}")
        if not name or not name.replace("_", "").isalnum():
            raise DatabaseError(f"invalid column name {name!r}")
        self.name = name
        self.type = type
        # A primary key is implicitly NOT NULL.
        self.nullable = nullable and not primary_key
        self.primary_key = primary_key

    def validate(self, value: Any) -> Any:
        """Check (and lightly coerce) *value* for this column."""
        if value is None:
            if not self.nullable:
                raise DatabaseError(f"column {self.name!r} is NOT NULL")
            return None
        expected = TYPES[self.type]
        if isinstance(value, bool):  # bool is an int subclass; reject it
            raise DatabaseError(f"column {self.name!r}: booleans not supported")
        if not isinstance(value, expected):
            raise DatabaseError(
                f"column {self.name!r} ({self.type}) got {type(value).__name__}"
            )
        if self.type == "REAL":
            return float(value)
        if self.type == "BLOB":
            return bytes(value)
        return value

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        flags = " PK" if self.primary_key else ("" if self.nullable else " NOT NULL")
        return f"<Column {self.name} {self.type}{flags}>"


class Schema:
    """An ordered set of columns."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise DatabaseError("a table needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise DatabaseError(f"duplicate column names in {names}")
        pks = [c for c in columns if c.primary_key]
        if len(pks) > 1:
            raise DatabaseError("at most one PRIMARY KEY column is supported")
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, int] = {c.name: i for i, c in enumerate(columns)}
        self.primary_key: Optional[Column] = pks[0] if pks else None

    def index_of(self, name: str) -> int:
        """Column position of *name* (raises on unknown column)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise DatabaseError(f"no such column {name!r}") from None

    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    def validate_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        if len(row) != len(self.columns):
            raise DatabaseError(
                f"row has {len(row)} values, schema has {len(self.columns)}"
            )
        return tuple(col.validate(v) for col, v in zip(self.columns, row))

    def __len__(self) -> int:
        return len(self.columns)


class HeapTable:
    """Rows stored by monotonically-assigned rowid.

    The table enforces schema validation and primary-key uniqueness; all
    higher-level behaviour (indexes, transactions, SQL) lives above it.
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self._rows: Dict[int, Tuple[Any, ...]] = {}
        self._next_rowid = 1
        # Primary-key value -> rowid, for O(1) uniqueness + point lookup.
        self._pk_map: Dict[Any, int] = {}
        # MVCC version chains, driven by the Database: rowid -> list of
        # (last_valid_seq, row-or-None) committed images, in seq order.
        # ``row is None`` means the rowid did not exist at that seq.
        self._versions: Dict[int, List[Tuple[int, Optional[Tuple[Any, ...]]]]] = {}

    # -- mutation --------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        """Insert *row*, returning its rowid."""
        validated = self.schema.validate_row(row)
        pk = self.schema.primary_key
        if pk is not None:
            key = validated[self.schema.index_of(pk.name)]
            if key in self._pk_map:
                raise DatabaseError(
                    f"{self.name}: duplicate primary key {key!r}"
                )
            self._pk_map[key] = self._next_rowid
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = validated
        return rowid

    def delete(self, rowid: int) -> Tuple[Any, ...]:
        """Remove and return the row at *rowid*."""
        try:
            row = self._rows.pop(rowid)
        except KeyError:
            raise RecordNotFound(f"{self.name}: no rowid {rowid}") from None
        pk = self.schema.primary_key
        if pk is not None:
            self._pk_map.pop(row[self.schema.index_of(pk.name)], None)
        return row

    def update(self, rowid: int, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Replace the row at *rowid*, returning the old row."""
        if rowid not in self._rows:
            raise RecordNotFound(f"{self.name}: no rowid {rowid}")
        validated = self.schema.validate_row(row)
        old = self._rows[rowid]
        pk = self.schema.primary_key
        if pk is not None:
            idx = self.schema.index_of(pk.name)
            if validated[idx] != old[idx]:
                if validated[idx] in self._pk_map:
                    raise DatabaseError(
                        f"{self.name}: duplicate primary key {validated[idx]!r}"
                    )
                del self._pk_map[old[idx]]
                self._pk_map[validated[idx]] = rowid
        self._rows[rowid] = validated
        return old

    def restore(self, rowid: int, row: Tuple[Any, ...]) -> None:
        """Reinstall a previously deleted row (transaction rollback)."""
        if rowid in self._rows:
            raise DatabaseError(f"{self.name}: rowid {rowid} already present")
        self._rows[rowid] = row
        pk = self.schema.primary_key
        if pk is not None:
            self._pk_map[row[self.schema.index_of(pk.name)]] = rowid
        self._next_rowid = max(self._next_rowid, rowid + 1)

    # -- multi-version concurrency (driven by the Database) ----------------------

    def save_version(self, rowid: int, last_seq: int,
                     row: Optional[Tuple[Any, ...]]) -> None:
        """Record that *row* (None = absent) was the committed image of
        *rowid* through commit-sequence *last_seq*."""
        self._versions.setdefault(rowid, []).append((last_seq, row))

    def discard_version(self, rowid: int, last_seq: int) -> None:
        """Drop the version staged at *last_seq* (writer rollback)."""
        chain = self._versions.get(rowid)
        if chain and chain[-1][0] == last_seq:
            chain.pop()
            if not chain:
                del self._versions[rowid]

    def visible_row(self, rowid: int,
                    watermark: int) -> Optional[Tuple[Any, ...]]:
        """Committed image of *rowid* as of *watermark* (None = absent)."""
        for last_seq, row in self._versions.get(rowid, ()):
            if last_seq >= watermark:
                return row
        return self._rows.get(rowid)

    def versioned_ids(self) -> set:
        """All rowids that may be visible to some snapshot."""
        return set(self._rows) | set(self._versions)

    def has_versions(self) -> bool:
        return bool(self._versions)

    def prune_versions(self, watermark: int) -> None:
        """Drop version entries no snapshot at >= *watermark* can need."""
        for rowid in list(self._versions):
            chain = [(s, r) for s, r in self._versions[rowid]
                     if s >= watermark]
            if chain:
                self._versions[rowid] = chain
            else:
                del self._versions[rowid]

    # -- access -----------------------------------------------------------------

    def get(self, rowid: int) -> Tuple[Any, ...]:
        try:
            return self._rows[rowid]
        except KeyError:
            raise RecordNotFound(f"{self.name}: no rowid {rowid}") from None

    def lookup_pk(self, key: Any) -> Optional[int]:
        """Rowid for a primary-key value, or None."""
        return self._pk_map.get(key)

    def scan(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Iterate (rowid, row) in rowid order."""
        for rowid in sorted(self._rows):
            yield rowid, self._rows[rowid]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<HeapTable {self.name!r} rows={len(self)}>"
