"""DbManager: the paper's ``dataIO`` package.

The original stored uploaded executables in MySQL through a JDBC
connection.  This facade stores them in the embedded engine as
zlib-compressed BLOBs — the compression is *real* (real bytes in, real
bytes out) — and charges the simulated host for the CPU and disk work of
each operation, which is what produces the DB-related CPU peaks in the
paper's Figure 6 ("loading and decompressing the file from the
database") and the second disk-write peak in Figure 8.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Generator, List, Optional

from repro.db.engine import Database
from repro.db.table import Column
from repro.errors import RecordNotFound, TransactionError
from repro.faults.injector import get_injector
from repro.hardware.host import Host
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.units import MB

__all__ = ["DbCostModel", "DbManager", "StoredExecutable"]


class DbCostModel:
    """Per-operation simulated costs (all tunable per experiment).

    CPU costs scale with *uncompressed* payload size; disk traffic uses
    the actual compressed size.
    """

    def __init__(self,
                 compress_cpu_per_mb: float = 0.04,
                 decompress_cpu_per_mb: float = 0.02,
                 statement_cpu: float = 0.01,
                 commit_disk_overhead: float = 512.0):
        self.compress_cpu_per_mb = compress_cpu_per_mb
        self.decompress_cpu_per_mb = decompress_cpu_per_mb
        #: Fixed CPU charged per SQL statement (parse/plan/execute).
        self.statement_cpu = statement_cpu
        #: Extra bytes written per commit (WAL bookkeeping).
        self.commit_disk_overhead = commit_disk_overhead


class StoredExecutable:
    """Metadata + payload returned by :meth:`DbManager.load_executable`."""

    def __init__(self, name: str, payload: bytes, description: str,
                 params_spec: str, compressed_size: int, stored_at: float):
        self.name = name
        self.payload = payload
        self.description = description
        self.params_spec = params_spec
        self.size = len(payload)
        self.compressed_size = compressed_size
        self.stored_at = stored_at

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<StoredExecutable {self.name!r} {self.size}B>"


_SCHEMA = [
    Column("name", "TEXT", primary_key=True),
    Column("description", "TEXT"),
    Column("params_spec", "TEXT"),
    Column("data", "BLOB", nullable=False),
    Column("size", "INT", nullable=False),
    Column("compressed_size", "INT", nullable=False),
    Column("stored_at", "REAL", nullable=False),
]


class DbManager:
    """Executable storage on top of the embedded database.

    All public operations are *simulation processes* (call them from a
    process and ``yield`` the result) because they consume simulated host
    time.  The underlying data operations are real.
    """

    TABLE = "executables"

    def __init__(self, host: Host, db: Optional[Database] = None,
                 costs: Optional[DbCostModel] = None):
        self.host = host
        self.sim = host.sim
        self.db = db if db is not None else Database()
        self.costs = costs or DbCostModel()
        if self.TABLE not in self.db.tables:
            self.db.create_table(self.TABLE, _SCHEMA)
        # Observability plane: WAL pressure as a gauge + append events.
        # The log itself stays telemetry-free (it has no simulator); the
        # manager, which owns the clock, feeds the plane via the log's
        # observer hook.  Pure recording — no simulation events.
        from repro.telemetry.events import bus
        from repro.telemetry.gauges import gauges
        wal_bus = bus(self.sim)
        wal_gauge = gauges(self.sim).gauge("db.wal_bytes", unit="B")
        wal_gauge.set(self.db.wal.size())

        def _on_wal_change(delta: int, total: int) -> None:
            wal_gauge.set(total)
            if delta > 0:
                wal_bus.emit("wal.append", layer="db", nbytes=delta,
                             total=total)

        self.db.wal.observer = _on_wal_change

    # -- executables --------------------------------------------------------

    def store_executable(self, name: str, payload: bytes,
                         description: str = "",
                         params_spec: str = "") -> Process:
        """Compress and store *payload* under *name* (a simulation process).

        The returned process-event's value is the compressed size.
        Storing an existing name replaces the old row (upsert), which is
        what lets users re-upload a fixed executable.
        """

        def op() -> Generator[Event, None, int]:
            compressed = zlib.compress(payload, level=6)
            # CPU: compression cost scales with the uncompressed size.
            yield self.host.compute(
                self.costs.compress_cpu_per_mb * len(payload) / MB(1)
                + self.costs.statement_cpu,
                tag="db",
            )
            injector = get_injector(self.sim)
            if injector is not None:
                # A stalled WAL write blocks the commit for a while; a
                # transaction fault aborts it before any row changes.
                stall = injector.fire("db.stall")
                if stall is not None and stall.duration > 0:
                    yield self.sim.timeout(stall.duration,
                                           name="fault:db-stall")
                if injector.fire("db.txn_error"):
                    raise TransactionError(
                        f"storing {name!r}: commit aborted "
                        f"(transient WAL write failure)")
            # Disk: the engine's insert lands in the WAL + heap.
            yield self.host.disk_write(
                len(compressed) + self.costs.commit_disk_overhead)
            with self.db.transaction():
                self.db.delete_where(
                    self.TABLE, lambda r: r["name"] == name)
                self.db.insert(self.TABLE, [
                    name, description, params_spec, compressed,
                    len(payload), len(compressed), self.sim.now,
                ])
            return len(compressed)

        return self.sim.process(op(), name=f"db-store:{name}")

    def load_executable(self, name: str) -> Process:
        """Load and decompress the executable *name* (a simulation process).

        The process-event's value is a :class:`StoredExecutable`; it fails
        with :class:`~repro.errors.RecordNotFound` for unknown names.
        """

        def op() -> Generator[Event, None, StoredExecutable]:
            yield self.host.compute(self.costs.statement_cpu, tag="db")
            record = self.db.get_by_pk(self.TABLE, name)  # raises RecordNotFound
            # Disk: read the compressed blob from the heap.
            yield self.host.disk_read(record["compressed_size"])
            # CPU: decompression scales with the uncompressed size — this
            # is the paper's "loading and decompressing" CPU peak.
            yield self.host.compute(
                self.costs.decompress_cpu_per_mb * record["size"] / MB(1),
                tag="db",
            )
            payload = zlib.decompress(record["data"])
            return StoredExecutable(
                name=record["name"],
                payload=payload,
                description=record["description"],
                params_spec=record["params_spec"],
                compressed_size=record["compressed_size"],
                stored_at=record["stored_at"],
            )

        return self.sim.process(op(), name=f"db-load:{name}")

    def delete_executable(self, name: str) -> Process:
        """Remove *name*; the process-event's value is True if it existed."""

        def op() -> Generator[Event, None, bool]:
            yield self.host.compute(self.costs.statement_cpu, tag="db")
            count = self.db.delete_where(self.TABLE,
                                         lambda r: r["name"] == name)
            yield self.host.disk_write(self.costs.commit_disk_overhead)
            return count > 0

        return self.sim.process(op(), name=f"db-delete:{name}")

    # -- crash recovery ------------------------------------------------------

    def recover_from_crash(self) -> "DbManager":
        """Rebuild a fresh manager from the WAL image.

        Models an appliance restart after a crash: everything committed
        survives, in-flight transactions are discarded.  The simulated
        recovery cost is one disk read of the log plus replay CPU.
        """
        image = self.db.wal.snapshot()
        recovered = Database.recover(image)
        return DbManager(self.host, db=recovered, costs=self.costs)

    # -- synchronous metadata queries (no payload, negligible cost) ----------

    def list_executables(self) -> List[Dict[str, Any]]:
        """Metadata of all stored executables (no payload bytes)."""
        rows = self.db.select(self.TABLE)
        return [{k: v for k, v in row.items() if k != "data"} for row in rows]

    def has_executable(self, name: str) -> bool:
        try:
            self.db.get_by_pk(self.TABLE, name)
            return True
        except RecordNotFound:
            return False

    def executable_sizes(self, name: str) -> Dict[str, int]:
        """(uncompressed, compressed) sizes without loading the payload."""
        record = self.db.get_by_pk(self.TABLE, name)
        return {"size": record["size"],
                "compressed_size": record["compressed_size"]}

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<DbManager host={self.host.name!r} executables={self.db.count(self.TABLE)}>"
