"""DbManager: the paper's ``dataIO`` package.

The original stored uploaded executables in MySQL through a JDBC
connection.  This facade stores them in the embedded engine as
zlib-compressed BLOBs — the compression is *real* (real bytes in, real
bytes out) — and charges the simulated host for the CPU and disk work of
each operation, which is what produces the DB-related CPU peaks in the
paper's Figure 6 ("loading and decompressing the file from the
database") and the second disk-write peak in Figure 8.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.db.engine import Database
from repro.db.replica import ReadReplica, ReadRouter
from repro.db.table import Column
from repro.errors import OnServeError, RecordNotFound, TransactionError
from repro.faults.injector import get_injector
from repro.hardware.host import Host
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.units import MB

__all__ = ["DbCostModel", "DbManager", "DbTierConfig", "StoredExecutable"]


class DbTierConfig:
    """How the DB tier behaves under concurrent load (all off by default).

    The defaults reproduce the seed timeline byte-for-byte: statements
    apply synchronously in one simulation frame, fetches materialize the
    whole BLOB, and no replica exists.  Scenarios opt in to the scaled
    tier feature by feature.
    """

    def __init__(self,
                 mvcc: bool = False,
                 serialize: bool = False,
                 chunk_bytes: int = 0,
                 replicas: int = 0,
                 replica_lag: float = 0.5):
        #: Snapshot-isolation reads: version chains + ``snapshot()`` handles.
        self.mvcc = bool(mvcc)
        #: Model connection contention: writers hold a FIFO lock (and the
        #: transaction) across the store's CPU/disk time; non-MVCC readers
        #: must queue behind it — the measured upload-storm spike.
        self.serialize = bool(serialize)
        #: Fetch BLOBs in fixed chunks of this size (0 = whole-BLOB).
        self.chunk_bytes = int(chunk_bytes)
        #: Number of WAL-shipping read replicas (0 = none).
        self.replicas = int(replicas)
        #: Modeled ship+apply propagation lag per replica, seconds.
        self.replica_lag = float(replica_lag)
        if self.chunk_bytes < 0:
            raise OnServeError(f"chunk_bytes must be >= 0, got {chunk_bytes}")
        if self.replicas < 0:
            raise OnServeError(f"replicas must be >= 0, got {replicas}")
        if self.replica_lag < 0:
            raise OnServeError(
                f"replica_lag must be >= 0, got {replica_lag}")


class DbCostModel:
    """Per-operation simulated costs (all tunable per experiment).

    CPU costs scale with *uncompressed* payload size; disk traffic uses
    the actual compressed size.
    """

    def __init__(self,
                 compress_cpu_per_mb: float = 0.04,
                 decompress_cpu_per_mb: float = 0.02,
                 statement_cpu: float = 0.01,
                 commit_disk_overhead: float = 512.0):
        self.compress_cpu_per_mb = compress_cpu_per_mb
        self.decompress_cpu_per_mb = decompress_cpu_per_mb
        #: Fixed CPU charged per SQL statement (parse/plan/execute).
        self.statement_cpu = statement_cpu
        #: Extra bytes written per commit (WAL bookkeeping).
        self.commit_disk_overhead = commit_disk_overhead


class StoredExecutable:
    """Metadata + payload returned by :meth:`DbManager.load_executable`."""

    def __init__(self, name: str, payload: bytes, description: str,
                 params_spec: str, compressed_size: int, stored_at: float):
        self.name = name
        self.payload = payload
        self.description = description
        self.params_spec = params_spec
        self.size = len(payload)
        self.compressed_size = compressed_size
        self.stored_at = stored_at

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<StoredExecutable {self.name!r} {self.size}B>"


_SCHEMA = [
    Column("name", "TEXT", primary_key=True),
    Column("description", "TEXT"),
    Column("params_spec", "TEXT"),
    Column("data", "BLOB", nullable=False),
    Column("size", "INT", nullable=False),
    Column("compressed_size", "INT", nullable=False),
    Column("stored_at", "REAL", nullable=False),
]


class DbManager:
    """Executable storage on top of the embedded database.

    All public operations are *simulation processes* (call them from a
    process and ``yield`` the result) because they consume simulated host
    time.  The underlying data operations are real.
    """

    TABLE = "executables"

    def __init__(self, host: Host, db: Optional[Database] = None,
                 costs: Optional[DbCostModel] = None,
                 tier: Optional[DbTierConfig] = None):
        self.host = host
        self.sim = host.sim
        self.tier = tier or DbTierConfig()
        self.db = db if db is not None else Database(mvcc=self.tier.mvcc)
        if self.tier.mvcc:
            self.db.mvcc = True  # honor the tier on a passed-in engine
        self.costs = costs or DbCostModel()
        if self.TABLE not in self.db.tables:
            self.db.create_table(self.TABLE, _SCHEMA)
        # Connection lock (db_serialize): FIFO handoff, pure python —
        # the wait event exists only when there is actual contention.
        self._lock_held = False
        self._lock_waiters: List[Event] = []
        # WAL-shipping read replicas + the bounded-staleness router.
        self.replicas: List[ReadReplica] = [
            ReadReplica(self.sim, self.db, lag=self.tier.replica_lag,
                        name=f"db-replica-{i + 1}")
            for i in range(self.tier.replicas)
        ]
        self.read_router: Optional[ReadRouter] = (
            ReadRouter(self.sim, self.db, tuple(self.replicas),
                       lag=self.tier.replica_lag)
            if self.replicas else None)
        self._snap_gauge = None
        self._chunk_gauge = None
        # Observability plane: WAL pressure as a gauge + append events.
        # The log itself stays telemetry-free (it has no simulator); the
        # manager, which owns the clock, feeds the plane via the log's
        # observer hook.  Pure recording — no simulation events.
        from repro.telemetry.events import bus
        from repro.telemetry.gauges import gauges
        wal_bus = bus(self.sim)
        wal_gauge = gauges(self.sim).gauge("db.wal_bytes", unit="B")
        wal_gauge.set(self.db.wal.size())

        def _on_wal_change(delta: int, total: int) -> None:
            wal_gauge.set(total)
            if delta > 0:
                wal_bus.emit("wal.append", layer="db", nbytes=delta,
                             total=total)

        self.db.wal.observer = _on_wal_change

    # -- connection lock (db_serialize) -------------------------------------

    def _acquire_conn(self) -> Generator[Event, None, float]:
        """Take the FIFO connection lock; returns the seconds waited.

        Uncontended acquisition is frame-synchronous (no event is
        created), so an enabled-but-idle serialized tier cannot perturb
        the timeline.
        """
        t0 = self.sim.now
        if self._lock_held:
            waiter = self.sim.event(name="db:lock-wait")
            self._lock_waiters.append(waiter)
            yield waiter
        self._lock_held = True
        waited = self.sim.now - t0
        if waited > 0:
            from repro.telemetry.events import bus
            bus(self.sim).emit("db.lock.wait", layer="db", waited=waited)
        return waited

    def _release_conn(self) -> None:
        if self._lock_waiters:
            # Direct handoff: the lock stays held for the next waiter,
            # so nobody can barge in between release and resume.
            self._lock_waiters.pop(0).succeed()
        else:
            self._lock_held = False

    # -- telemetry ----------------------------------------------------------

    def _note_snapshot_reads(self) -> None:
        from repro.telemetry.gauges import gauges
        if self._snap_gauge is None:
            self._snap_gauge = gauges(self.sim).gauge("db.snapshot_reads")
        self._snap_gauge.set(self.db.stats["snapshot_reads"])

    def _set_chunk_stream(self, resident: float) -> None:
        from repro.telemetry.gauges import gauges
        if self._chunk_gauge is None:
            self._chunk_gauge = gauges(self.sim).gauge("db.chunk_stream",
                                                       unit="B")
        self._chunk_gauge.set(resident)

    def _emit_fetch(self, name: str, mode: str, size: int, chunks: int,
                    resident_peak: float, waited: float) -> None:
        from repro.telemetry.events import bus
        bus(self.sim).emit("db.fetch", layer="db", name=name, mode=mode,
                           nbytes=size, chunks=chunks,
                           resident_peak=resident_peak, waited=waited)

    # -- executables --------------------------------------------------------

    def store_executable(self, name: str, payload: bytes,
                         description: str = "",
                         params_spec: str = "") -> Process:
        """Compress and store *payload* under *name* (a simulation process).

        The returned process-event's value is the compressed size.
        Storing an existing name replaces the old row (upsert), which is
        what lets users re-upload a fixed executable.
        """

        def faithful() -> Generator[Event, None, int]:
            compressed = zlib.compress(payload, level=6)
            # CPU: compression cost scales with the uncompressed size.
            yield self.host.compute(
                self.costs.compress_cpu_per_mb * len(payload) / MB(1)
                + self.costs.statement_cpu,
                tag="db",
            )
            injector = get_injector(self.sim)
            if injector is not None:
                # A stalled WAL write blocks the commit for a while; a
                # transaction fault aborts it before any row changes.
                stall = injector.fire("db.stall")
                if stall is not None and stall.duration > 0:
                    yield self.sim.timeout(stall.duration,
                                           name="fault:db-stall")
                if injector.fire("db.txn_error"):
                    raise TransactionError(
                        f"storing {name!r}: commit aborted "
                        f"(transient WAL write failure)")
            # Disk: the engine's insert lands in the WAL + heap.
            yield self.host.disk_write(
                len(compressed) + self.costs.commit_disk_overhead)
            with self.db.transaction():
                self.db.delete_where(
                    self.TABLE, lambda r: r["name"] == name)
                self.db.insert(self.TABLE, [
                    name, description, params_spec, compressed,
                    len(payload), len(compressed), self.sim.now,
                ])
            return len(compressed)

        def serialized() -> Generator[Event, None, int]:
            # Contended tier: the writer occupies the single connection
            # across the operation's CPU and disk time, the way the
            # original's single JDBC connection did.  Non-MVCC readers
            # queue on the lock — that is the spike dbscale measures;
            # MVCC snapshot readers skip it entirely.  The engine
            # transaction itself stays frame-synchronous (begin and
            # commit in one frame, after the I/O): other subsystems'
            # bookkeeping writes (staging marks, leases, notify rows)
            # run in their own frames and must never find a foreign
            # transaction left open across a yield.
            compressed = zlib.compress(payload, level=6)
            yield from self._acquire_conn()
            try:
                yield self.host.compute(
                    self.costs.compress_cpu_per_mb * len(payload) / MB(1)
                    + self.costs.statement_cpu,
                    tag="db",
                )
                injector = get_injector(self.sim)
                if injector is not None:
                    stall = injector.fire("db.stall")
                    if stall is not None and stall.duration > 0:
                        yield self.sim.timeout(stall.duration,
                                               name="fault:db-stall")
                    if injector.fire("db.txn_error"):
                        raise TransactionError(
                            f"storing {name!r}: commit aborted "
                            f"(transient WAL write failure)")
                yield self.host.disk_write(
                    len(compressed) + self.costs.commit_disk_overhead)
                with self.db.transaction():
                    self.db.delete_where(
                        self.TABLE, lambda r: r["name"] == name)
                    self.db.insert(self.TABLE, [
                        name, description, params_spec, compressed,
                        len(payload), len(compressed), self.sim.now,
                    ])
            finally:
                self._release_conn()
            return len(compressed)

        op = serialized if self.tier.serialize else faithful
        return self.sim.process(op(), name=f"db-store:{name}")

    def load_executable(self, name: str,
                        on_chunk: Optional[Callable[[float], Any]] = None
                        ) -> Process:
        """Load and decompress the executable *name* (a simulation process).

        The process-event's value is a :class:`StoredExecutable`; it fails
        with :class:`~repro.errors.RecordNotFound` for unknown names.

        Tier behaviour: with MVCC the row lookup goes through a
        :meth:`~repro.db.engine.Database.snapshot` handle (never blocked
        by — and blind to — an open writer transaction); with a
        serialized non-MVCC tier the read queues on the connection lock
        behind in-flight stores.  With ``chunk_bytes > 0`` the payload
        streams in fixed chunks — *on_chunk*, when given, is called per
        chunk with its byte count and must return a process generator
        (the consumer); fetch of chunk ``i+1`` is pipelined with the
        consumer of chunk ``i``, so at most two chunks are resident.
        """

        def op() -> Generator[Event, None, StoredExecutable]:
            waited = 0.0
            locked = False
            if self.tier.serialize and not self.db.mvcc:
                waited = yield from self._acquire_conn()
                locked = True
            try:
                yield self.host.compute(self.costs.statement_cpu, tag="db")
                if self.db.mvcc:
                    with self.db.snapshot() as snap:
                        record = snap.get_by_pk(self.TABLE, name)
                    self._note_snapshot_reads()
                else:
                    record = self.db.get_by_pk(self.TABLE, name)
                if self.tier.chunk_bytes > 0:
                    # The connection is occupied for the row lookup
                    # only; the chunk loop streams from the local spool.
                    if locked:
                        self._release_conn()
                        locked = False
                    return (yield from self._fetch_chunked(
                        name, record, on_chunk, waited))
                # Disk: the compressed blob travels over the connection.
                yield self.host.disk_read(record["compressed_size"])
                if locked:
                    # The blob is in the driver's buffer; decompression
                    # is local CPU and does not occupy the connection.
                    self._release_conn()
                    locked = False
                # CPU: decompression scales with the uncompressed size —
                # this is the paper's "loading and decompressing" CPU peak.
                yield self.host.compute(
                    self.costs.decompress_cpu_per_mb * record["size"] / MB(1),
                    tag="db",
                )
                payload = zlib.decompress(record["data"])
                self._emit_fetch(name, "whole", record["size"], 1,
                                 record["size"], waited)
                return StoredExecutable(
                    name=record["name"],
                    payload=payload,
                    description=record["description"],
                    params_spec=record["params_spec"],
                    compressed_size=record["compressed_size"],
                    stored_at=record["stored_at"],
                )
            finally:
                if locked:
                    self._release_conn()

        return self.sim.process(op(), name=f"db-load:{name}")

    def _fetch_chunked(self, name: str, record: Dict[str, Any],
                       on_chunk: Optional[Callable[[float], Any]],
                       waited: float
                       ) -> Generator[Event, None, StoredExecutable]:
        """Stream the BLOB in fixed chunks with double-buffering.

        Simulated residency is charged per chunk (allocate -> consume ->
        release), so the peak is at most two chunk sizes regardless of
        BLOB size; the real payload bytes are still reassembled and
        returned, because they are the data plane of the simulation.
        """
        size = int(record["size"])
        csize = record["compressed_size"]
        data = record["data"]
        chunk = self.tier.chunk_bytes
        n = max(1, (size + chunk - 1) // chunk) if size > 0 else 1
        decomp = zlib.decompressobj()
        parts: List[bytes] = []
        resident = 0.0
        peak = 0.0
        consumer: Optional[Process] = None
        prev_bytes = 0.0
        for i in range(n):
            this_bytes = float(min(chunk, size - i * chunk)) if size else 0.0
            lo = i * len(data) // n
            hi = (i + 1) * len(data) // n
            self.host.allocate_memory(this_bytes)
            resident += this_bytes
            peak = max(peak, resident)
            self._set_chunk_stream(resident)
            yield self.host.disk_read(csize / n)
            yield self.host.compute(
                self.costs.decompress_cpu_per_mb * this_bytes / MB(1),
                tag="db",
            )
            part = decomp.decompress(data[lo:hi])
            if i == n - 1:
                part += decomp.flush()
            parts.append(part)
            if on_chunk is not None:
                if consumer is not None:
                    # Pipelined: we fetched chunk i while the consumer
                    # still worked on chunk i-1; join before recycling.
                    yield consumer
                    self.host.release_memory(prev_bytes)
                    resident -= prev_bytes
                    self._set_chunk_stream(resident)
                consumer = self.sim.process(on_chunk(this_bytes),
                                            name=f"db-chunk:{name}:{i}")
            elif i > 0:
                self.host.release_memory(prev_bytes)
                resident -= prev_bytes
                self._set_chunk_stream(resident)
            prev_bytes = this_bytes
        if consumer is not None:
            yield consumer
        self.host.release_memory(prev_bytes)
        resident -= prev_bytes
        self._set_chunk_stream(resident)
        self._emit_fetch(name, "chunked", size, n, peak, waited)
        return StoredExecutable(
            name=record["name"],
            payload=b"".join(parts),
            description=record["description"],
            params_spec=record["params_spec"],
            compressed_size=record["compressed_size"],
            stored_at=record["stored_at"],
        )

    def delete_executable(self, name: str) -> Process:
        """Remove *name*; the process-event's value is True if it existed."""

        def op() -> Generator[Event, None, bool]:
            yield self.host.compute(self.costs.statement_cpu, tag="db")
            count = self.db.delete_where(self.TABLE,
                                         lambda r: r["name"] == name)
            yield self.host.disk_write(self.costs.commit_disk_overhead)
            return count > 0

        return self.sim.process(op(), name=f"db-delete:{name}")

    # -- crash recovery ------------------------------------------------------

    def recover_from_crash(self) -> "DbManager":
        """Rebuild a fresh manager from the WAL image.

        Models an appliance restart after a crash: everything committed
        survives, in-flight transactions are discarded.  The simulated
        recovery cost is one disk read of the log plus replay CPU.
        """
        image = self.db.wal.snapshot()
        recovered = Database.recover(image, mvcc=self.db.mvcc)
        return DbManager(self.host, db=recovered, costs=self.costs,
                         tier=self.tier)

    # -- synchronous metadata queries (no payload, negligible cost) ----------

    def _meta_reader(self) -> Database:
        """Where metadata reads go: a caught-up replica when routed."""
        if self.read_router is not None:
            return self.read_router.reader(self.TABLE)
        return self.db

    def list_executables(self) -> List[Dict[str, Any]]:
        """Metadata of all stored executables (no payload bytes)."""
        rows = self._meta_reader().select(self.TABLE)
        return [{k: v for k, v in row.items() if k != "data"} for row in rows]

    def has_executable(self, name: str) -> bool:
        try:
            self._meta_reader().get_by_pk(self.TABLE, name)
            return True
        except RecordNotFound:
            return False

    def executable_sizes(self, name: str) -> Dict[str, int]:
        """(uncompressed, compressed) sizes without loading the payload."""
        record = self._meta_reader().get_by_pk(self.TABLE, name)
        return {"size": record["size"],
                "compressed_size": record["compressed_size"]}

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<DbManager host={self.host.name!r} executables={self.db.count(self.TABLE)}>"
