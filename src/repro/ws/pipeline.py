"""The interceptor pipeline both SOAP endpoints run requests through.

This is the unified request fabric's dispatch spine: instead of each
entry point hand-rolling its own metrics, fault translation and
bookkeeping, :class:`SoapServer` and :class:`WsClient` both push every
request through a :class:`Pipeline` of :class:`Interceptor` objects
around a *terminal* (the actual handler dispatch on the server, the
transport on the client).

Interceptors are generator-based so they can bracket simulated time:
``call_next(inv)`` returns a generator the interceptor drives with
``yield from``, seeing the request on the way in and the result (or
exception) on the way out — the classic JAX-WS/Axis2 handler-chain
shape, which JClarens-style grid containers rely on for cross-cutting
concerns.

Built-ins (in the order a server installs them, outermost first):

* :class:`FaultTranslationInterceptor` — the one place exceptions become
  SOAP fault envelopes (previously duplicated at every dispatch site),
* :class:`MetricsInterceptor` — per-service/per-operation latency
  histograms + fault counters feeding
  :class:`repro.telemetry.MetricsRegistry`,
* :class:`AdmissionControlInterceptor` — per-service concurrency caps
  with queue-or-reject (the first real scalability lever, §VIII.D),
* :class:`TracingInterceptor` — sim-time spans in the request's
  :class:`~repro.core.context.RequestContext` trace tree,
* :class:`DeadlineInterceptor` — rejects work whose deadline already
  passed, so timeouts propagate across every hop.

Determinism: with default settings no interceptor creates simulation
events or consumes simulated time, so wiring the pipeline in cannot
perturb a scenario's series.  Only admission *queueing* (opt-in) waits
on events — deterministically FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any, Callable, Deque, Dict, Generator, List, Optional, TYPE_CHECKING,
)

from repro.core.context import RequestContext
from repro.errors import ReproError, SoapFault
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges
from repro.telemetry.metrics import MetricsRegistry
from repro.ws.soap import SoapEnvelope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = [
    "Invocation", "Interceptor", "Pipeline",
    "FaultTranslationInterceptor", "MetricsInterceptor",
    "AdmissionControlInterceptor", "TracingInterceptor",
    "DeadlineInterceptor",
]

#: A pipeline stage's continuation: invocation -> result generator.
Continuation = Callable[["Invocation"], Generator]


class Invocation:
    """One request travelling the pipeline."""

    __slots__ = ("ctx", "service_name", "operation", "params", "side",
                 "request_bytes", "terminal")

    def __init__(self, ctx: Optional[RequestContext], service_name: str,
                 operation: str, params: Dict[str, Any], side: str,
                 request_bytes: int = 0):
        self.ctx = ctx
        self.service_name = service_name
        self.operation = operation
        self.params = params
        #: ``"client"`` or ``"server"`` — which end of the wire runs us.
        self.side = side
        #: Encoded request envelope size (server side; 0 on the client).
        self.request_bytes = request_bytes
        #: Innermost continuation, bound per request by :meth:`Pipeline.run`
        #: (riding on the invocation keeps the composed chain reusable).
        self.terminal: Optional[Continuation] = None

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        rid = self.ctx.request_id if self.ctx else "-"
        return (f"<Invocation {self.side} {self.service_name}."
                f"{self.operation} {rid}>")


class Interceptor:
    """Base class: pass-through.  Override :meth:`invoke`."""

    #: Short name used in traces and repr.
    name = "interceptor"

    def invoke(self, inv: Invocation,
               call_next: Continuation) -> Generator:
        return (yield from call_next(inv))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<{type(self).__name__}>"


class Pipeline:
    """An ordered interceptor chain shared by every request of one side."""

    def __init__(self, interceptors: Optional[List[Interceptor]] = None):
        self.interceptors: List[Interceptor] = list(interceptors or [])
        self._chain: Optional[Continuation] = None
        self._chain_len = -1

    def add(self, interceptor: Interceptor) -> "Pipeline":
        """Append an interceptor (innermost position); returns self."""
        self.interceptors.append(interceptor)
        self._chain = None
        return self

    def find(self, cls: type) -> Optional[Interceptor]:
        """The first installed interceptor of *cls*, if any."""
        for icp in self.interceptors:
            if isinstance(icp, cls):
                return icp
        return None

    def run(self, inv: Invocation, terminal: Continuation) -> Generator:
        """The full chain around *terminal*, as one generator.

        Drive it with ``yield from`` inside a simulation process.  The
        interceptor chain is composed once and reused for every request
        (rebuilt by :meth:`add`); *terminal* rides on the invocation so
        concurrent requests with different terminals cannot collide.
        """
        if self._chain is None or len(self.interceptors) != self._chain_len:
            self._chain = self._compose()
        inv.terminal = terminal
        return self._chain(inv)

    def _compose(self) -> Continuation:
        def tail(inv: Invocation) -> Generator:
            return (yield from inv.terminal(inv))
        call: Continuation = tail
        for icp in reversed(self.interceptors):
            def stage(inv: Invocation, _icp: Interceptor = icp,
                      _next: Continuation = call) -> Generator:
                return (yield from _icp.invoke(inv, _next))
            call = stage
        self._chain_len = len(self.interceptors)
        return call

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        names = [type(i).__name__ for i in self.interceptors]
        return f"<Pipeline {' -> '.join(names) or '(empty)'}>"


# ---------------------------------------------------------------------------
# Built-in interceptors
# ---------------------------------------------------------------------------

class FaultTranslationInterceptor(Interceptor):
    """Exceptions -> SOAP fault envelopes, in exactly one place.

    A SOAP container never lets implementation errors kill the
    connection: library errors keep their type in the fault detail,
    unexpected ones are marked ``Server.Internal``.  *on_fault* (if
    given) is called with the invocation — the server uses it to keep
    its per-service fault counters.
    """

    name = "fault"

    def __init__(self, on_fault: Optional[Callable[[Invocation], None]] = None):
        self.on_fault = on_fault

    def invoke(self, inv: Invocation, call_next: Continuation) -> Generator:
        try:
            return (yield from call_next(inv))
        except SoapFault as fault:
            if self.on_fault is not None:
                self.on_fault(inv)
            return SoapEnvelope.fault_response(fault)
        except Exception as exc:
            if self.on_fault is not None:
                self.on_fault(inv)
            code = "Server" if isinstance(exc, ReproError) else "Server.Internal"
            # The detail carries the root cause's type *and* message —
            # "TypeName: message" — so the client side can classify the
            # fault (SoapFault.root_cause / .retryable) without the
            # original object; the exception itself is chained on for
            # in-process callers and debuggability.
            message = str(exc)
            fault = SoapFault(
                faultcode=code,
                faultstring=message or type(exc).__name__,
                detail=(f"{type(exc).__name__}: {message}" if message
                        else type(exc).__name__),
            )
            fault.__cause__ = exc
            return SoapEnvelope.fault_response(fault)


class MetricsInterceptor(Interceptor):
    """Latency + fault accounting per (service, operation).

    Besides the histogram registry, every completed crossing is emitted
    on the simulator's :class:`~repro.telemetry.events.EventBus` as a
    ``ws.request`` event (service, operation, side, latency, fault,
    request id, origin host, principal) — the bus record that lets
    downstream analysis join a SOAP request with the grid activity it
    caused, and the fleet rollups attribute server-side load to the
    replica (*origin*) that served it.  Emission is pure bookkeeping:
    no simulation events, no simulated time.
    """

    name = "metrics"

    def __init__(self, sim: "Simulator",
                 registry: Optional[MetricsRegistry] = None,
                 side: str = "server", origin: Optional[str] = None):
        self.sim = sim
        self.registry = registry if registry is not None \
            else MetricsRegistry(name=side)
        #: Name of the host this pipeline end runs on (the replica name
        #: on a sharded server side) — ``None`` when the owner predates
        #: fleet attribution or has no host.
        self.origin = origin
        self.bus = bus(sim)

    def _emit(self, inv: Invocation, latency: float,
              fault: Optional[str]) -> None:
        ctx = inv.ctx
        self.bus.emit("ws.request", layer="ws",
                      request_id=ctx.request_id if ctx else None,
                      service=inv.service_name, operation=inv.operation,
                      side=inv.side, latency=latency, fault=fault,
                      origin=self.origin,
                      principal=ctx.principal if ctx else None)

    def invoke(self, inv: Invocation, call_next: Continuation) -> Generator:
        started = self.sim.now
        try:
            result = yield from call_next(inv)
        except SoapFault as fault:
            self.registry.record(inv.service_name, inv.operation,
                                 self.sim.now - started,
                                 fault=fault.faultcode)
            self._emit(inv, self.sim.now - started, fault.faultcode)
            raise
        except Exception as exc:
            self.registry.record(inv.service_name, inv.operation,
                                 self.sim.now - started,
                                 fault=type(exc).__name__)
            self._emit(inv, self.sim.now - started, type(exc).__name__)
            raise
        self.registry.record(inv.service_name, inv.operation,
                             self.sim.now - started)
        self._emit(inv, self.sim.now - started, None)
        return result


class _ServiceAdmission:
    """Book-keeping of one service's concurrency gate."""

    __slots__ = ("in_flight", "peak", "admitted", "rejected", "queued",
                 "waiters")

    def __init__(self) -> None:
        self.in_flight = 0
        self.peak = 0
        self.admitted = 0
        self.rejected = 0
        self.queued = 0
        self.waiters: Deque = deque()


class AdmissionControlInterceptor(Interceptor):
    """Per-service concurrency cap with queue-or-reject.

    Unconfigured services pass straight through (no events, no cost).
    With a cap set, excess requests either fault immediately with
    ``Server.Busy`` (reject mode) or wait FIFO on a deterministic event
    queue until a slot frees (queue mode, bounded by *max_queue*).
    """

    name = "admission"

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._policies: Dict[str, Dict[str, Any]] = {}
        self._states: Dict[str, _ServiceAdmission] = {}
        self._board = gauges(sim)

    def set_policy(self, service_name: str, max_concurrent: Optional[int],
                   queue: bool = False,
                   max_queue: Optional[int] = None) -> None:
        """Cap *service_name* at *max_concurrent* in-flight requests.

        ``max_concurrent=None`` removes the cap.
        """
        if max_concurrent is None:
            self._policies.pop(service_name, None)
            return
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self._policies[service_name] = {
            "max_concurrent": max_concurrent,
            "queue": queue,
            "max_queue": max_queue,
        }

    def stats(self, service_name: str) -> _ServiceAdmission:
        state = self._states.get(service_name)
        if state is None:
            state = self._states[service_name] = _ServiceAdmission()
        return state

    def invoke(self, inv: Invocation, call_next: Continuation) -> Generator:
        policy = self._policies.get(inv.service_name)
        if policy is None:
            return (yield from call_next(inv))
        state = self.stats(inv.service_name)
        cap = policy["max_concurrent"]
        queue_gauge = self._board.gauge(
            f"admission.{inv.service_name}.queue", unit="reqs")
        while state.in_flight >= cap:
            max_queue = policy["max_queue"]
            if not policy["queue"] or (max_queue is not None
                                       and len(state.waiters) >= max_queue):
                state.rejected += 1
                raise SoapFault(
                    faultcode="Server.Busy",
                    faultstring=(f"service {inv.service_name!r} is at its "
                                 f"concurrency limit ({cap})"),
                    detail="AdmissionReject")
            slot = self.sim.event(f"admission:{inv.service_name}")
            state.waiters.append(slot)
            state.queued += 1
            queue_gauge.set(len(state.waiters))
            try:
                yield slot  # woken FIFO when a slot frees; then re-check
            finally:
                queue_gauge.set(len(state.waiters))
        state.in_flight += 1
        state.peak = max(state.peak, state.in_flight)
        state.admitted += 1
        try:
            return (yield from call_next(inv))
        finally:
            state.in_flight -= 1
            if state.waiters:
                state.waiters.popleft().succeed()


class TracingInterceptor(Interceptor):
    """One trace span per pipeline crossing (``side:Service.operation``)."""

    name = "tracing"

    def invoke(self, inv: Invocation, call_next: Continuation) -> Generator:
        ctx = inv.ctx
        if ctx is None:
            return (yield from call_next(inv))
        span = ctx.begin_span(
            f"{inv.side}:{inv.service_name}.{inv.operation}")
        try:
            result = yield from call_next(inv)
        except Exception as exc:
            span.meta["error"] = type(exc).__name__
            raise
        finally:
            ctx.end_span(span)
        return result


class DeadlineInterceptor(Interceptor):
    """Refuse work whose context deadline has already passed.

    The deadline travels in the :class:`RequestContext`, so one check
    per hop is enough to propagate a timeout across portal → SOAP →
    agent → grid without any layer knowing about the others.
    """

    name = "deadline"

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.expirations = 0

    def invoke(self, inv: Invocation, call_next: Continuation) -> Generator:
        ctx = inv.ctx
        if ctx is not None and ctx.deadline is not None \
                and self.sim.now > ctx.deadline:
            self.expirations += 1
            raise SoapFault(
                faultcode="Server.DeadlineExceeded" if inv.side == "server"
                else "Client.DeadlineExceeded",
                faultstring=(f"deadline {ctx.deadline:.3f}s passed before "
                             f"{inv.service_name}.{inv.operation} "
                             f"dispatched (now={self.sim.now:.3f}s)"),
                detail="DeadlineExceeded")
        return (yield from call_next(inv))
