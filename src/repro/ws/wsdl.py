"""WSDL 1.1-style document generation and parsing.

The generated document carries everything a ``wsimport``-style client
generator needs: operations, typed parameters, return types, and the
service endpoint address.  :func:`parse_wsdl` inverts
:func:`generate_wsdl` exactly (tested by round-trip property tests).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Tuple

from repro.errors import WsdlError
from repro.ws.registryapi import OperationSpec, ParameterSpec, ServiceDescription
from repro.ws.xmlcodec import parse, render

__all__ = ["generate_wsdl", "parse_wsdl"]


def generate_wsdl(service: ServiceDescription, endpoint: str) -> bytes:
    """Render *service* as a WSDL document bound to *endpoint*."""
    defs = ET.Element("definitions")
    defs.set("xmlns", "http://schemas.xmlsoap.org/wsdl/")
    defs.set("name", service.name)
    defs.set("targetNamespace", service.namespace)

    if service.documentation:
        ET.SubElement(defs, "documentation").text = service.documentation

    # Messages: one input and one output per operation.
    for op in service.operations:
        msg_in = ET.SubElement(defs, "message")
        msg_in.set("name", f"{op.name}Request")
        for p in op.params:
            part = ET.SubElement(msg_in, "part")
            part.set("name", p.name)
            part.set("type", p.xsd_type)
        msg_out = ET.SubElement(defs, "message")
        msg_out.set("name", f"{op.name}Response")
        part = ET.SubElement(msg_out, "part")
        part.set("name", "return")
        part.set("type", op.return_type)

    # Port type: the abstract interface.
    port_type = ET.SubElement(defs, "portType")
    port_type.set("name", f"{service.name}PortType")
    for op in service.operations:
        op_el = ET.SubElement(port_type, "operation")
        op_el.set("name", op.name)
        ET.SubElement(op_el, "input").set("message", f"{op.name}Request")
        ET.SubElement(op_el, "output").set("message", f"{op.name}Response")

    # Binding: SOAP-RPC over the simulated transport.
    binding = ET.SubElement(defs, "binding")
    binding.set("name", f"{service.name}Binding")
    binding.set("type", f"{service.name}PortType")
    binding.set("style", "rpc")
    binding.set("transport", "urn:repro:soap-sim")

    # Service + port: the concrete endpoint.
    svc = ET.SubElement(defs, "service")
    svc.set("name", service.name)
    port = ET.SubElement(svc, "port")
    port.set("name", f"{service.name}Port")
    port.set("binding", f"{service.name}Binding")
    address = ET.SubElement(port, "address")
    address.set("location", endpoint)

    return render(defs)


def parse_wsdl(document: bytes) -> Tuple[ServiceDescription, str]:
    """Parse a WSDL document back into ``(description, endpoint)``."""
    root = parse(document)
    if not root.tag.endswith("definitions"):
        raise WsdlError(f"not a WSDL document (root {root.tag!r})")
    # ElementTree keeps the default xmlns as a tag prefix; strip it.
    ns = ""
    if root.tag.startswith("{"):
        ns = root.tag[: root.tag.index("}") + 1]

    def findall(parent: ET.Element, tag: str):
        return parent.findall(ns + tag)

    def find(parent: ET.Element, tag: str):
        return parent.find(ns + tag)

    name = root.get("name")
    namespace = root.get("targetNamespace")
    if not name or not namespace:
        raise WsdlError("definitions element missing name/targetNamespace")

    doc_el = find(root, "documentation")
    documentation = (doc_el.text or "") if doc_el is not None else ""

    # Collect message signatures.
    messages = {}
    for msg in findall(root, "message"):
        parts = [(part.get("name"), part.get("type"))
                 for part in findall(msg, "part")]
        messages[msg.get("name")] = parts

    port_type = find(root, "portType")
    if port_type is None:
        raise WsdlError("WSDL has no portType")
    operations = []
    for op_el in findall(port_type, "operation"):
        op_name = op_el.get("name")
        input_el = find(op_el, "input")
        output_el = find(op_el, "output")
        if op_name is None or input_el is None or output_el is None:
            raise WsdlError(f"malformed operation element {op_name!r}")
        in_parts = messages.get(input_el.get("message"))
        out_parts = messages.get(output_el.get("message"))
        if in_parts is None or out_parts is None:
            raise WsdlError(f"operation {op_name!r} references unknown messages")
        if len(out_parts) != 1:
            raise WsdlError(f"operation {op_name!r} must return one part")
        params = [ParameterSpec(pname, ptype) for pname, ptype in in_parts]
        operations.append(OperationSpec(op_name, params,
                                        return_type=out_parts[0][1]))

    svc = find(root, "service")
    if svc is None:
        raise WsdlError("WSDL has no service element")
    port = find(svc, "port")
    address = find(port, "address") if port is not None else None
    if address is None or not address.get("location"):
        raise WsdlError("WSDL has no endpoint address")
    endpoint = address.get("location")

    description = ServiceDescription(name, operations, namespace=namespace,
                                     documentation=documentation)
    return description, endpoint
