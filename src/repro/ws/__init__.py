"""The web-service stack: SOAP, WSDL, UDDI, server and client.

This is the appliance's Tomcat/Axis2/jUDDI stand-in.  Marshalling is
*real*: requests and responses are actual XML documents built and parsed
with the standard library, so message sizes (which drive the simulated
network timing) come from real bytes.  Only the transport is simulated —
a message "travels" by charging its byte size to the network path
between the client and server hosts.

Layering::

    client.py   WsClient + wsimport-style stub generation
    uddi.py     UDDI registry (publish / find)
    server.py   SoapServer: deploy services, dispatch invocations
    pipeline.py interceptor chain (fault/metrics/admission/trace/deadline)
    wsdl.py     WSDL generation and parsing
    soap.py     Envelope encode/decode, faults
    xmlcodec.py typed value <-> XML codec

Both :class:`SoapServer` and :class:`WsClient` route every request
through a :class:`~repro.ws.pipeline.Pipeline` — the unified request
fabric's dispatch spine.
"""

from repro.ws.client import WsClient, generate_stub
from repro.ws.pipeline import (
    AdmissionControlInterceptor, DeadlineInterceptor,
    FaultTranslationInterceptor, Interceptor, Invocation,
    MetricsInterceptor, Pipeline, TracingInterceptor,
)
from repro.ws.registryapi import OperationSpec, ParameterSpec, ServiceDescription
from repro.ws.server import SoapFabric, SoapServer
from repro.ws.soap import SoapEnvelope
from repro.ws.uddi import UddiRegistry
from repro.ws.wsdl import generate_wsdl, parse_wsdl

__all__ = [
    "ParameterSpec",
    "OperationSpec",
    "ServiceDescription",
    "SoapEnvelope",
    "generate_wsdl",
    "parse_wsdl",
    "SoapFabric",
    "SoapServer",
    "WsClient",
    "generate_stub",
    "UddiRegistry",
    "Pipeline",
    "Interceptor",
    "Invocation",
    "FaultTranslationInterceptor",
    "MetricsInterceptor",
    "AdmissionControlInterceptor",
    "TracingInterceptor",
    "DeadlineInterceptor",
]
