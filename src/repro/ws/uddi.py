"""UDDI registry (jUDDI stand-in).

Implements the UDDI v2 data model the paper relies on: business
entities own business services, services carry binding templates (the
access point + a pointer to the WSDL), and tModels describe interfaces.
onServe publishes every generated web service here together with its
WSDL location and endpoint "to make it easier to find a service" (§V).

Find semantics follow UDDI's approximate-match convention: name patterns
are case-insensitive, with ``%`` matching any run of characters.
"""

from __future__ import annotations

import hashlib
import itertools
import re
from typing import Dict, List, Optional

from repro.errors import UddiError

__all__ = ["BusinessEntity", "BusinessService", "BindingTemplate", "TModel",
           "UddiRegistry"]


class BusinessEntity:
    """The publisher: an organization or user."""

    __slots__ = ("key", "name", "description")

    def __init__(self, key: str, name: str, description: str = ""):
        self.key = key
        self.name = name
        self.description = description

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<BusinessEntity {self.name!r}>"


class BusinessService:
    """A published service owned by a business."""

    __slots__ = ("key", "business_key", "name", "description")

    def __init__(self, key: str, business_key: str, name: str,
                 description: str = ""):
        self.key = key
        self.business_key = business_key
        self.name = name
        self.description = description

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<BusinessService {self.name!r}>"


class BindingTemplate:
    """How to reach a service: access point + WSDL location + tModel."""

    __slots__ = ("key", "service_key", "access_point", "wsdl_location",
                 "tmodel_key")

    def __init__(self, key: str, service_key: str, access_point: str,
                 wsdl_location: str = "", tmodel_key: str = ""):
        self.key = key
        self.service_key = service_key
        self.access_point = access_point
        self.wsdl_location = wsdl_location
        self.tmodel_key = tmodel_key

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<BindingTemplate {self.access_point!r}>"


class TModel:
    """A reusable technical fingerprint (interface type)."""

    __slots__ = ("key", "name", "overview_url")

    def __init__(self, key: str, name: str, overview_url: str = ""):
        self.key = key
        self.name = name
        self.overview_url = overview_url


class UddiRegistry:
    """An in-process UDDI registry."""

    def __init__(self, name: str = "uddi"):
        self.name = name
        self._businesses: Dict[str, BusinessEntity] = {}
        self._services: Dict[str, BusinessService] = {}
        self._bindings: Dict[str, BindingTemplate] = {}
        self._tmodels: Dict[str, TModel] = {}
        self._counter = itertools.count(1)

    # -- keys ------------------------------------------------------------------

    def _new_key(self, kind: str) -> str:
        raw = f"{self.name}:{kind}:{next(self._counter)}"
        return "uuid:" + hashlib.sha1(raw.encode()).hexdigest()[:32]

    # -- publish ----------------------------------------------------------------

    def save_business(self, name: str, description: str = "") -> BusinessEntity:
        if not name:
            raise UddiError("business name must not be empty")
        entity = BusinessEntity(self._new_key("biz"), name, description)
        self._businesses[entity.key] = entity
        return entity

    def save_service(self, business_key: str, name: str,
                     description: str = "") -> BusinessService:
        if business_key not in self._businesses:
            raise UddiError(f"unknown businessKey {business_key!r}")
        if not name:
            raise UddiError("service name must not be empty")
        service = BusinessService(self._new_key("svc"), business_key, name,
                                  description)
        self._services[service.key] = service
        return service

    def save_binding(self, service_key: str, access_point: str,
                     wsdl_location: str = "",
                     tmodel_key: str = "") -> BindingTemplate:
        if service_key not in self._services:
            raise UddiError(f"unknown serviceKey {service_key!r}")
        if tmodel_key and tmodel_key not in self._tmodels:
            raise UddiError(f"unknown tModelKey {tmodel_key!r}")
        binding = BindingTemplate(self._new_key("bind"), service_key,
                                  access_point, wsdl_location, tmodel_key)
        self._bindings[binding.key] = binding
        return binding

    def save_tmodel(self, name: str, overview_url: str = "") -> TModel:
        if not name:
            raise UddiError("tModel name must not be empty")
        tmodel = TModel(self._new_key("tm"), name, overview_url)
        self._tmodels[tmodel.key] = tmodel
        return tmodel

    # -- delete -----------------------------------------------------------------

    def delete_service(self, service_key: str) -> None:
        """Remove a service and its bindings."""
        if service_key not in self._services:
            raise UddiError(f"unknown serviceKey {service_key!r}")
        del self._services[service_key]
        for key in [k for k, b in self._bindings.items()
                    if b.service_key == service_key]:
            del self._bindings[key]

    def delete_business(self, business_key: str) -> None:
        """Remove a business and everything under it."""
        if business_key not in self._businesses:
            raise UddiError(f"unknown businessKey {business_key!r}")
        del self._businesses[business_key]
        for key in [k for k, s in self._services.items()
                    if s.business_key == business_key]:
            self.delete_service(key)

    # -- inquiry ----------------------------------------------------------------

    def find_business(self, name_pattern: str = "%") -> List[BusinessEntity]:
        rx = _pattern_to_regex(name_pattern)
        return sorted((b for b in self._businesses.values()
                       if rx.match(b.name)), key=lambda b: b.name)

    def find_tmodel(self, name_pattern: str = "%") -> List[TModel]:
        rx = _pattern_to_regex(name_pattern)
        return sorted((t for t in self._tmodels.values()
                       if rx.match(t.name)), key=lambda t: t.name)

    def find_service(self, name_pattern: str = "%",
                     business_key: Optional[str] = None) -> List[BusinessService]:
        rx = _pattern_to_regex(name_pattern)
        hits = [s for s in self._services.values() if rx.match(s.name)]
        if business_key is not None:
            hits = [s for s in hits if s.business_key == business_key]
        return sorted(hits, key=lambda s: s.name)

    def get_business(self, key: str) -> BusinessEntity:
        try:
            return self._businesses[key]
        except KeyError:
            raise UddiError(f"unknown businessKey {key!r}") from None

    def get_service(self, key: str) -> BusinessService:
        try:
            return self._services[key]
        except KeyError:
            raise UddiError(f"unknown serviceKey {key!r}") from None

    def get_bindings(self, service_key: str) -> List[BindingTemplate]:
        self.get_service(service_key)  # raises on unknown key
        return sorted((b for b in self._bindings.values()
                       if b.service_key == service_key), key=lambda b: b.key)

    def get_tmodel(self, key: str) -> TModel:
        try:
            return self._tmodels[key]
        except KeyError:
            raise UddiError(f"unknown tModelKey {key!r}") from None

    def service_count(self) -> int:
        return len(self._services)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<UddiRegistry businesses={len(self._businesses)} "
                f"services={len(self._services)}>")


def _pattern_to_regex(pattern: str) -> "re.Pattern[str]":
    parts = [re.escape(chunk) for chunk in pattern.split("%")]
    return re.compile("^" + ".*".join(parts) + "$", re.IGNORECASE)
