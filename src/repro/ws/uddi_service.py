"""The UDDI registry exposed as a SOAP service (jUDDI's inquiry API).

The paper's clients "examine the jUDDI registry" remotely (§VII.B);
deploying this wrapper next to the registry makes discovery a real
web-service exchange — inquiry envelopes travel the network like any
other call, which is what the evaluation's traffic traces include.

Result rows are encoded as pipe-delimited lines (one entity per line),
a faithful echo of the flat result sets UDDI v2 inquiry returns.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import UddiError
from repro.ws.registryapi import OperationSpec, ParameterSpec, ServiceDescription
from repro.ws.uddi import UddiRegistry

__all__ = ["UddiInquiryService", "parse_service_lines", "parse_binding_lines"]


class UddiInquiryService:
    """SOAP face of a :class:`~repro.ws.uddi.UddiRegistry`."""

    SERVICE_NAME = "UddiInquiry"

    def __init__(self, registry: UddiRegistry):
        self.registry = registry
        self.inquiries = 0

    def service_description(self) -> ServiceDescription:
        s = "xsd:string"
        return ServiceDescription(self.SERVICE_NAME, [
            OperationSpec("findService", [ParameterSpec("pattern", s)], s),
            OperationSpec("findBusiness", [ParameterSpec("pattern", s)], s),
            OperationSpec("getBindings", [ParameterSpec("serviceKey", s)], s),
            OperationSpec("serviceCount", [], "xsd:int"),
        ], documentation="UDDI v2-style inquiry API")

    def handler(self, operation: str, params: Dict[str, Any]) -> Any:
        self.inquiries += 1
        if operation == "findService":
            hits = self.registry.find_service(params["pattern"])
            return "\n".join(f"{s.key}|{s.name}|{s.description}"
                             for s in hits)
        if operation == "findBusiness":
            hits = self.registry.find_business(params["pattern"])
            return "\n".join(f"{b.key}|{b.name}|{b.description}"
                             for b in hits)
        if operation == "getBindings":
            bindings = self.registry.get_bindings(params["serviceKey"])
            return "\n".join(
                f"{b.key}|{b.access_point}|{b.wsdl_location}|{b.tmodel_key}"
                for b in bindings)
        if operation == "serviceCount":
            return self.registry.service_count()
        raise UddiError(f"inquiry API has no operation {operation!r}")


def parse_service_lines(text: str) -> list[dict]:
    """Decode findService/findBusiness results."""
    out = []
    for line in text.splitlines():
        if not line:
            continue
        key, name, description = line.split("|", 2)
        out.append({"key": key, "name": name, "description": description})
    return out


def parse_binding_lines(text: str) -> list[dict]:
    """Decode getBindings results."""
    out = []
    for line in text.splitlines():
        if not line:
            continue
        key, access_point, wsdl_location, tmodel_key = line.split("|", 3)
        out.append({"key": key, "access_point": access_point,
                    "wsdl_location": wsdl_location,
                    "tmodel_key": tmodel_key})
    return out
