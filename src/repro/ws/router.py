"""The request router: one endpoint fronting N onServe replicas.

The appliance sharding story (DESIGN.md §11): instead of one virtual
appliance owning every SOAP dispatch, N stateless replicas share the DB
tier and the UDDI registry, and a :class:`RequestRouter` on its own host
is the single endpoint clients resolve.  Placement is a consistent-hash
ring over service names (:class:`HashRing`), so a service's requests
normally land on one replica — keeping its materialized runtime, staged
copies and agent session warm — while replica join/leave moves only
``1/N`` of the keyspace.

Two deviations from the hash owner are allowed, in order:

* **breaker-aware skip** — each replica has a circuit breaker; an open
  circuit removes it from the candidate walk until the reset timeout,
  so requests do not queue behind a dead replica, and
* **least-loaded spill** — when the owner already has
  ``spill_threshold`` requests in flight, the request goes to the
  least-loaded live candidate instead (ties broken by ring preference,
  keeping the choice deterministic).

The router is itself a fabric target: it has a ``host``, a ``wsdl``
and a ``transport``, so :class:`~repro.ws.client.WsClient` talks to it
exactly as it would to a :class:`~repro.ws.server.SoapServer` — the
extra hop is two real envelope transfers (client↔router) plus a small
routing CPU charge, which is what ``benchmarks/bench_scaleout.py``
bounds below 5% at ``replicas=1``.

A *disabled* router can be constructed and wired without being
registered in the fabric; it then owns no endpoint, routes nothing and
creates zero simulation events — the attached-but-disabled guard in the
golden tests proves the default single-appliance timeline cannot see it.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.context import RequestContext, span
from repro.errors import ServiceNotFound, SoapFault, WsError, is_retryable
from repro.hardware.host import Host
from repro.resilience.breaker import BreakerBoard
from repro.simkernel.events import Event
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges
from repro.ws.server import SoapFabric, SoapServer
from repro.ws.soap import SoapEnvelope
from repro.ws.wsdl import generate_wsdl

__all__ = ["HashRing", "RequestRouter", "Replica"]


class HashRing:
    """A consistent-hash ring with virtual nodes (deterministic).

    Keys and nodes hash through SHA-1, so placement is stable across
    runs and processes — no dependence on Python's seeded ``hash()``.
    With ``vnodes`` virtual points per node, removing one node of N
    reassigns only ~``1/N`` of the keyspace, which the router tests
    assert directly.
    """

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise WsError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: Sorted (point, node) pairs — the ring.
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, bool] = {}

    @staticmethod
    def _hash(key: str) -> int:
        return int(hashlib.sha1(key.encode()).hexdigest()[:16], 16)

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise WsError(f"node {node!r} already on the ring")
        self._nodes[node] = True
        for i in range(self.vnodes):
            insort(self._points, (self._hash(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise WsError(f"node {node!r} not on the ring")
        del self._nodes[node]
        self._points = [(p, n) for p, n in self._points if n != node]

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    #: Size of the hash space (16 hex digits of SHA-1 = 64 bits).
    SPACE = 1 << 64

    def ownership(self) -> Dict[str, float]:
        """node -> fraction of the keyspace its arcs cover.

        Point ``p_i`` owns the arc ``(p_{i-1}, p_i]`` (keys map to the
        first point clockwise), so summing each node's arcs — including
        the wrap-around arc to the first point — yields its expected
        share of *uniformly distributed* keys.  The hot-shard detector
        scores observed load against this, so popularity skew stands
        out from mere vnode placement unevenness.  Fractions sum to 1.
        """
        if not self._points:
            return {}
        out: Dict[str, float] = {node: 0.0 for node in self._nodes}
        prev = self._points[-1][0] - self.SPACE
        for point, node in self._points:
            out[node] += (point - prev) / self.SPACE
            prev = point
        return out

    def owner(self, key: str) -> str:
        """The node owning *key* (first point clockwise of its hash)."""
        preference = self.preference(key)
        if not preference:
            raise WsError("hash ring is empty")
        return preference[0]

    def preference(self, key: str) -> List[str]:
        """Every node, ordered by ring distance from *key*.

        The head is the owner; the tail is the fallback walk order used
        when breakers skip nodes or load spills requests over.
        """
        if not self._points:
            return []
        start = bisect_right(self._points, (self._hash(key), chr(0x10FFFF)))
        seen: List[str] = []
        for i in range(len(self._points)):
            node = self._points[(start + i) % len(self._points)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self._nodes):
                    break
        return seen


class Replica:
    """One onServe replica as the router sees it."""

    __slots__ = ("name", "server", "onserve")

    def __init__(self, name: str, server: SoapServer, onserve=None):
        self.name = name
        self.server = server
        self.onserve = onserve

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Replica {self.name!r}>"


class RequestRouter:
    """Consistent-hash request routing over onServe replicas."""

    #: CPU seconds to route one request (hash + table lookup + proxying
    #: bookkeeping) — deliberately far below the container's own
    #: PARSE+DISPATCH cost so the router never becomes the bottleneck.
    ROUTE_CPU = 0.002

    def __init__(self, host: Host, fabric: Optional[SoapFabric] = None,
                 enabled: bool = True, spill_threshold: int = 4,
                 vnodes: int = 64, breaker_failure_threshold: int = 3,
                 breaker_reset_timeout: float = 60.0):
        self.host = host
        self.sim = host.sim
        self.enabled = enabled
        if spill_threshold < 1:
            raise WsError("spill_threshold must be >= 1")
        self.spill_threshold = spill_threshold
        self.ring = HashRing(vnodes=vnodes)
        self._replicas: Dict[str, Replica] = {}
        self._inflight: Dict[str, int] = {}
        #: Per-replica circuit breakers: an open circuit drops the
        #: replica from the candidate walk until the reset timeout.
        self.breakers = BreakerBoard(
            self.sim, failure_threshold=breaker_failure_threshold,
            reset_timeout=breaker_reset_timeout)
        self.requests_routed = 0
        self.rebalances = 0
        self.bus = bus(self.sim)
        board = gauges(self.sim)
        self._queue_gauge = board.gauge("router.queue", unit="reqs")
        self._board = board
        # Only an *enabled* router owns an endpoint.  A disabled router
        # stays out of the fabric entirely: nothing resolves to it,
        # nothing routes through it, no timeline can be perturbed by it.
        self.fabric = fabric
        if fabric is not None and enabled:
            fabric.register(self)

    # -- replica membership ----------------------------------------------------

    def add_replica(self, name: str, server: SoapServer,
                    onserve=None) -> None:
        if name in self._replicas:
            raise WsError(f"replica {name!r} already registered")
        self._replicas[name] = Replica(name, server, onserve)
        self._inflight[name] = 0
        self.ring.add(name)

    def remove_replica(self, name: str) -> None:
        if name not in self._replicas:
            raise WsError(f"replica {name!r} not registered")
        del self._replicas[name]
        del self._inflight[name]
        self.ring.remove(name)

    def replicas(self) -> List[str]:
        return sorted(self._replicas)

    def inflight(self, name: str) -> int:
        return self._inflight.get(name, 0)

    # -- fabric-target surface (what WsClient needs) -----------------------------

    def endpoint_for(self, service_name: str) -> str:
        return f"{SoapFabric.SCHEME}{self.host.name}/{service_name}"

    def wsdl(self, service_name: str) -> bytes:
        """The service's WSDL, advertising the *router* endpoint.

        The interface description comes from whichever replica holds
        the deployed service; the endpoint is rewritten to the router's
        so wsimport-generated stubs route instead of pinning a replica.
        """
        order = self.ring.preference(service_name) or self.replicas()
        for name in order:
            try:
                svc = self._replicas[name].server.service(service_name)
            except ServiceNotFound:
                continue
            return generate_wsdl(svc.description,
                                 self.endpoint_for(service_name))
        raise ServiceNotFound(
            f"service {service_name!r} not deployed on any replica")

    # -- routing -----------------------------------------------------------------

    def choose(self, service_name: str) -> Replica:
        """Pick the replica for one request (pure decision, no events).

        Hash owner first; breaker-open replicas are skipped; an
        overloaded owner spills to the least-loaded live candidate
        (ties broken by ring preference, so the choice is a pure
        function of ring + breakers + inflight counts).
        """
        order = self.ring.preference(service_name)
        if not order:
            raise WsError("router has no replicas")
        live = [n for n in order if self.breakers.allow(n)]
        if not live:
            raise WsError(
                f"no live replica for {service_name!r} "
                f"({len(order)} registered, all circuits open)")
        owner = live[0]
        chosen = owner
        if self._inflight[owner] >= self.spill_threshold:
            chosen = min(live, key=lambda n: (self._inflight[n],
                                              live.index(n)))
        if chosen != owner or owner != order[0]:
            # Deviated from the pure hash owner: spilled on load and/or
            # skipped an open breaker.
            self.rebalances += 1
            self._board.gauge("router.rebalances").set(self.rebalances)
            self.bus.emit("router.rebalance", layer="ws",
                          service=service_name, owner=order[0],
                          chosen=chosen,
                          reason=("breaker" if owner != order[0]
                                  else "load"))
        return self._replicas[chosen]

    def transport(self, client: Host, service_name: str, operation: str,
                  params: Dict[str, Any],
                  ctx: Optional[RequestContext] = None,
                  ) -> Generator[Event, None, Any]:
        """The routed wire round-trip (client ↔ router ↔ replica).

        Mirrors :meth:`SoapServer.transport`'s contract so WsClient and
        generated stubs work unchanged: the request envelope travels
        client→router, the router charges its routing CPU, picks a
        replica, (lazily) materializes the service there, proxies the
        call over the router↔replica links, and relays the response —
        or the fault envelope — back to the client.
        """
        request = SoapEnvelope.request(operation, params,
                                       namespace=f"urn:repro:{service_name}")
        # The hop span brackets the *entire* routed exchange — request
        # envelope in, routing decision, proxied call, response (or
        # fault) relay out — so every replica-side span nests under one
        # parent and a cross-replica trace reads as a single tree.
        with span(ctx, "router:hop", router=self.host.name,
                  service=service_name) as hop:
            yield client.send(self.host, request.size(),
                              label=f"route-req:{service_name}.{operation}")
            yield self.host.compute(self.ROUTE_CPU, tag="router")
            replica = self.choose(service_name)
            if hop is not None:
                hop.meta["replica"] = replica.name
            self.requests_routed += 1
            self._inflight[replica.name] += 1
            self._queue_gauge.adjust(1)
            replica_gauge = self._board.gauge(
                "router.inflight", unit="reqs",
                labels={"replica": replica.name})
            replica_gauge.set(self._inflight[replica.name])
            try:
                with span(ctx, "router:route", replica=replica.name,
                          service=service_name):
                    if replica.onserve is not None:
                        # Deploy-on-A / invoke-on-B: build the runtime
                        # from the store before dispatching (free when
                        # local).
                        yield from replica.onserve.ensure_local_service(
                            service_name, ctx)
                    result = yield from replica.server.transport(
                        self.host, service_name, operation, params, ctx)
            except SoapFault as fault:
                if is_retryable(fault):
                    self.breakers.failure(replica.name)
                else:
                    self.breakers.success(replica.name)
                envelope = SoapEnvelope.fault_response(fault)
                yield self.host.send(client, envelope.size(),
                                     label=f"route-fault:{service_name}"
                                           f".{operation}")
                raise
            finally:
                self._inflight[replica.name] -= 1
                self._queue_gauge.adjust(-1)
                replica_gauge.set(self._inflight[replica.name])
            self.breakers.success(replica.name)
            response = SoapEnvelope.response(operation, result)
            yield self.host.send(client, response.size(),
                                 label=f"route-rsp:{service_name}.{operation}")
        return result

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<RequestRouter replicas={self.replicas()} "
                f"routed={self.requests_routed} "
                f"rebalances={self.rebalances}>")
