"""The request router: one endpoint fronting N onServe replicas.

The appliance sharding story (DESIGN.md §11): instead of one virtual
appliance owning every SOAP dispatch, N stateless replicas share the DB
tier and the UDDI registry, and a :class:`RequestRouter` on its own host
is the single endpoint clients resolve.  Placement is a consistent-hash
ring over service names (:class:`HashRing`), so a service's requests
normally land on one replica — keeping its materialized runtime, staged
copies and agent session warm — while replica join/leave moves only
``1/N`` of the keyspace.

Two deviations from the hash owner are allowed, in order:

* **breaker-aware skip** — each replica has a circuit breaker; an open
  circuit removes it from the candidate walk until the reset timeout,
  so requests do not queue behind a dead replica, and
* **least-loaded spill** — when the owner already has
  ``spill_threshold`` requests in flight, the request goes to the
  least-loaded live candidate instead (ties broken by ring preference,
  keeping the choice deterministic).

The router is itself a fabric target: it has a ``host``, a ``wsdl``
and a ``transport``, so :class:`~repro.ws.client.WsClient` talks to it
exactly as it would to a :class:`~repro.ws.server.SoapServer` — the
extra hop is two real envelope transfers (client↔router) plus a small
routing CPU charge, which is what ``benchmarks/bench_scaleout.py``
bounds below 5% at ``replicas=1``.

A *disabled* router can be constructed and wired without being
registered in the fabric; it then owns no endpoint, routes nothing and
creates zero simulation events — the attached-but-disabled guard in the
golden tests proves the default single-appliance timeline cannot see it.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from typing import (
    Any, Dict, Generator, List, Optional, Sequence, Set, Tuple,
)

from repro.core.context import RequestContext, span
from repro.errors import (
    ReplicaDown, ServerOverloaded, ServiceNotFound, SoapFault, WsError,
    is_retryable,
)
from repro.hardware.host import Host
from repro.resilience.breaker import BreakerBoard
from repro.resilience.retry import RetryPolicy
from repro.simkernel.events import Event
from repro.simkernel.process import Interrupt, Process
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges
from repro.ws.server import SoapFabric, SoapServer
from repro.ws.soap import SoapEnvelope
from repro.ws.wsdl import generate_wsdl

__all__ = ["HashRing", "RequestRouter", "Replica"]


class HashRing:
    """A consistent-hash ring with virtual nodes (deterministic).

    Keys and nodes hash through SHA-1, so placement is stable across
    runs and processes — no dependence on Python's seeded ``hash()``.
    With ``vnodes`` virtual points per node, removing one node of N
    reassigns only ~``1/N`` of the keyspace, which the router tests
    assert directly.
    """

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise WsError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: Sorted (point, node) pairs — the ring.
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, bool] = {}

    @staticmethod
    def _hash(key: str) -> int:
        return int(hashlib.sha1(key.encode()).hexdigest()[:16], 16)

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise WsError(f"node {node!r} already on the ring")
        self._nodes[node] = True
        for i in range(self.vnodes):
            insort(self._points, (self._hash(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise WsError(f"node {node!r} not on the ring")
        del self._nodes[node]
        self._points = [(p, n) for p, n in self._points if n != node]

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    #: Size of the hash space (16 hex digits of SHA-1 = 64 bits).
    SPACE = 1 << 64

    def ownership(self) -> Dict[str, float]:
        """node -> fraction of the keyspace its arcs cover.

        Point ``p_i`` owns the arc ``(p_{i-1}, p_i]`` (keys map to the
        first point clockwise), so summing each node's arcs — including
        the wrap-around arc to the first point — yields its expected
        share of *uniformly distributed* keys.  The hot-shard detector
        scores observed load against this, so popularity skew stands
        out from mere vnode placement unevenness.  Fractions sum to 1.
        """
        if not self._points:
            return {}
        out: Dict[str, float] = {node: 0.0 for node in self._nodes}
        prev = self._points[-1][0] - self.SPACE
        for point, node in self._points:
            out[node] += (point - prev) / self.SPACE
            prev = point
        return out

    def owner(self, key: str) -> str:
        """The node owning *key* (first point clockwise of its hash)."""
        preference = self.preference(key)
        if not preference:
            raise WsError("hash ring is empty")
        return preference[0]

    def preference(self, key: str) -> List[str]:
        """Every node, ordered by ring distance from *key*.

        The head is the owner; the tail is the fallback walk order used
        when breakers skip nodes or load spills requests over.
        """
        if not self._points:
            return []
        start = bisect_right(self._points, (self._hash(key), chr(0x10FFFF)))
        seen: List[str] = []
        for i in range(len(self._points)):
            node = self._points[(start + i) % len(self._points)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self._nodes):
                    break
        return seen


class Replica:
    """One onServe replica as the router sees it."""

    __slots__ = ("name", "server", "onserve", "crashed")

    def __init__(self, name: str, server: SoapServer, onserve=None):
        self.name = name
        self.server = server
        self.onserve = onserve
        #: The connection's view of a dead process: a crashed replica
        #: refuses dispatches (the router only *learns* of the death
        #: through transport faults and lease expiry — this flag models
        #: the refused TCP connection, not router knowledge).
        self.crashed = False

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Replica {self.name!r}>"


class RequestRouter:
    """Consistent-hash request routing over onServe replicas."""

    #: CPU seconds to route one request (hash + table lookup + proxying
    #: bookkeeping) — deliberately far below the container's own
    #: PARSE+DISPATCH cost so the router never becomes the bottleneck.
    ROUTE_CPU = 0.002

    #: Operations safe to replay freely (idempotent reads): retried and
    #: hedged without consulting the invocation-dedup table.  Anything
    #: not listed is treated as mutating and retried only under dedup.
    READ_OPS = frozenset({"findService", "getBindings", "listServices",
                          "describe", "status"})

    def __init__(self, host: Host, fabric: Optional[SoapFabric] = None,
                 enabled: bool = True, spill_threshold: int = 4,
                 vnodes: int = 64, breaker_failure_threshold: int = 3,
                 breaker_reset_timeout: float = 60.0,
                 store=None, self_healing: bool = False,
                 lease_ttl: float = 15.0,
                 lease_check_interval: float = 5.0,
                 fault_threshold: int = 2,
                 shed_limit: Optional[int] = None,
                 backpressure_threshold: Optional[int] = None,
                 failover_policy: Optional[RetryPolicy] = None):
        self.host = host
        self.sim = host.sim
        self.enabled = enabled
        if spill_threshold < 1:
            raise WsError("spill_threshold must be >= 1")
        self.spill_threshold = spill_threshold
        self.ring = HashRing(vnodes=vnodes)
        self._replicas: Dict[str, Replica] = {}
        self._inflight: Dict[str, int] = {}
        #: Per-replica circuit breakers: an open circuit drops the
        #: replica from the candidate walk until the reset timeout.
        self.breakers = BreakerBoard(
            self.sim, failure_threshold=breaker_failure_threshold,
            reset_timeout=breaker_reset_timeout)
        self.requests_routed = 0
        self.rebalances = 0
        self.bus = bus(self.sim)
        board = gauges(self.sim)
        self._queue_gauge = board.gauge("router.queue", unit="reqs")
        self._board = board
        # -- self-healing plane (attached-but-disabled by default) ----
        # With ``self_healing=False`` nothing below ever runs: the
        # routed path is byte-for-byte the pre-healing one, and the
        # constructor creates zero simulation events either way (the
        # membership watchdog only starts via start_membership_watch).
        if lease_ttl <= 0 or lease_check_interval <= 0:
            raise WsError("lease_ttl and lease_check_interval must be > 0")
        if fault_threshold < 1:
            raise WsError("fault_threshold must be >= 1")
        if shed_limit is not None and shed_limit < spill_threshold:
            raise WsError("shed_limit must be >= spill_threshold "
                          "(spill before shed)")
        self.store = store
        self.self_healing = self_healing
        self.lease_ttl = lease_ttl
        self.lease_check_interval = lease_check_interval
        self.fault_threshold = fault_threshold
        self.shed_limit = shed_limit
        self.backpressure_threshold = backpressure_threshold
        self.failover_policy = failover_policy or RetryPolicy(
            max_attempts=3, base_delay=0.25, multiplier=2.0, max_delay=2.0)
        self._consecutive_faults: Dict[str, int] = {}
        self._inflight_procs: Dict[str, Set[Process]] = {}
        #: Replicas declared dead or drained, parked for revival.
        self._dead: Dict[str, Replica] = {}
        self._drain_waiters: Dict[str, List[Event]] = {}
        self._watchdog: Optional[Process] = None
        self._backpressured = False
        #: (ts, replica, reason) death declarations, in order.
        self.deaths: List[Tuple[float, str, str]] = []
        self.failovers = 0
        self.dedup_hits = 0
        self.sheds = 0
        # Only an *enabled* router owns an endpoint.  A disabled router
        # stays out of the fabric entirely: nothing resolves to it,
        # nothing routes through it, no timeline can be perturbed by it.
        self.fabric = fabric
        if fabric is not None and enabled:
            fabric.register(self)

    # -- replica membership ----------------------------------------------------

    def add_replica(self, name: str, server: SoapServer,
                    onserve=None) -> None:
        if name in self._replicas:
            raise WsError(f"replica {name!r} already registered")
        self._replicas[name] = Replica(name, server, onserve)
        self._inflight[name] = 0
        self.ring.add(name)

    def remove_replica(self, name: str, reason: str = "admin",
                       drain: bool = False) -> Optional[Process]:
        """Take *name* out of the routing set.

        Immediate removal (the default) also clears the replica's share
        of the router gauges — its per-replica inflight gauge drops to
        zero and the aggregate queue gauge sheds its in-flight count —
        so a removed replica never lingers as a ghost in telemetry.  A
        ``router.rebalance`` event records the membership change.

        With ``drain=True`` the replica leaves the ring (no *new*
        requests route to it) but keeps its registration until every
        in-flight request finishes; returns the drain process to wait
        on.  Draining a replica with nothing in flight completes
        immediately (still via a process, for a uniform return type).
        """
        if name not in self._replicas:
            raise WsError(f"replica {name!r} not registered")
        if drain:
            self.ring.remove(name)
            self.rebalances += 1
            self._board.gauge("router.rebalances").set(self.rebalances)
            self.bus.emit("router.rebalance", layer="ws", replica=name,
                          reason=f"drain:{reason}",
                          inflight=self._inflight.get(name, 0),
                          replicas=len(self.ring))
            return self.sim.process(self._drain(name, reason),
                                    name=f"router:drain:{name}")
        inflight = self._inflight.pop(name, 0)
        del self._replicas[name]
        self.ring.remove(name)
        if inflight:
            self._queue_gauge.adjust(-inflight)
        self._board.gauge("router.inflight", unit="reqs",
                          labels={"replica": name}).set(0)
        self.rebalances += 1
        self._board.gauge("router.rebalances").set(self.rebalances)
        self.bus.emit("router.rebalance", layer="ws", replica=name,
                      reason=f"remove:{reason}", inflight=inflight,
                      replicas=len(self.ring))
        return None

    def _drain(self, name: str, reason: str
               ) -> Generator[Event, None, None]:
        """Finish in-flight work on *name*, then complete the removal."""
        while self._inflight.get(name, 0) > 0:
            gate = self.sim.event(name=f"router:drain-gate:{name}")
            self._drain_waiters.setdefault(name, []).append(gate)
            yield gate
        self._drain_waiters.pop(name, None)
        replica = self._replicas.pop(name, None)
        self._inflight.pop(name, None)
        self._board.gauge("router.inflight", unit="reqs",
                          labels={"replica": name}).set(0)
        self.bus.emit("router.rebalance", layer="ws", replica=name,
                      reason=f"drained:{reason}", replicas=len(self.ring))
        if replica is not None:
            self._dead[name] = replica
            if self.store is not None:
                self.store.drop_member(name)

    def _notify_drain(self, name: str) -> None:
        """Wake a drain waiting on *name* once its inflight hits zero."""
        if self._inflight.get(name, 0) > 0:
            return
        for gate in self._drain_waiters.pop(name, ()):  # pragma: no branch
            if not gate.triggered:
                gate.succeed()

    def _declare_dead(self, name: str, reason: str) -> None:
        """Declare *name* dead: un-route it and park it for revival."""
        if name not in self._replicas:
            return
        replica = self._replicas[name]
        self.deaths.append((self.sim.now, name, reason))
        self.bus.emit("router.replica_dead", layer="ws", replica=name,
                      reason=reason, survivors=len(self.ring) - 1)
        self.remove_replica(name, reason=reason)
        self._dead[name] = replica
        self._consecutive_faults.pop(name, None)
        if self.store is not None:
            self.store.drop_member(name)

    def revive_replica(self, name: str) -> None:
        """Bring a previously dead/drained replica back into the ring.

        Tolerant of the replica never having been declared dead (e.g. a
        restart that raced the watchdog): reviving an already-routable
        replica is a no-op.
        """
        if name in self._replicas:
            return
        replica = self._dead.pop(name, None)
        if replica is None:
            raise WsError(f"replica {name!r} was never registered")
        replica.crashed = False
        self.add_replica(name, replica.server, replica.onserve)
        self.breakers.reset(name)
        self._consecutive_faults.pop(name, None)
        self.rebalances += 1
        self._board.gauge("router.rebalances").set(self.rebalances)
        self.bus.emit("router.rebalance", layer="ws", replica=name,
                      reason="revive", replicas=len(self.ring))

    def replica_handle(self, name: str) -> Replica:
        """The Replica object for *name*, routable or parked-dead."""
        replica = self._replicas.get(name) or self._dead.get(name)
        if replica is None:
            raise WsError(f"replica {name!r} not registered")
        return replica

    def kill_inflight(self, name: str) -> int:
        """Interrupt every proxied request in flight against *name*.

        Called by the crash path: each tracked proxy process receives an
        :class:`Interrupt` whose cause is a :class:`ReplicaDown`, which
        the healing transport converts into a failover retry.  Returns
        how many were interrupted.
        """
        procs = self._inflight_procs.pop(name, None)
        if not procs:
            return 0
        killed = 0
        for proc in list(procs):
            if proc.is_alive:
                proc.interrupt(ReplicaDown(
                    f"replica {name!r} crashed mid-request"))
                killed += 1
        return killed

    def replicas(self) -> List[str]:
        return sorted(self._replicas)

    def inflight(self, name: str) -> int:
        return self._inflight.get(name, 0)

    # -- lease-based membership --------------------------------------------------

    def start_membership_watch(self) -> Process:
        """Start the lease watchdog (requires a store and self-healing).

        The watchdog scans the shared membership table every
        ``lease_check_interval`` seconds and declares any replica whose
        lease expired dead — the slow path that catches replicas which
        died quietly (no traffic, so no transport faults to count).
        """
        if not self.self_healing or self.store is None:
            raise WsError("membership watch needs self_healing=True "
                          "and a state store")
        if self._watchdog is not None and self._watchdog.is_alive:
            return self._watchdog
        self._watchdog = self.sim.process(
            self._membership_watch(), name="router:membership-watch")
        return self._watchdog

    def stop_membership_watch(self) -> None:
        if self._watchdog is not None and self._watchdog.is_alive:
            self._watchdog.interrupt("stop")
        self._watchdog = None

    def _membership_watch(self) -> Generator[Event, None, None]:
        try:
            while True:
                yield self.sim.timeout(self.lease_check_interval,
                                       name="router:lease-check")
                for name in self.store.expired_members(self.sim.now):
                    if name in self._replicas:
                        self._declare_dead(name, "lease_expired")
                    else:
                        self.store.drop_member(name)
        except Interrupt:
            return

    def _note_transport_fault(self, name: str) -> None:
        """Count a transport-level fault against *name* (fast path).

        ``fault_threshold`` consecutive transport faults declare the
        replica dead without waiting out the lease — the fast path for
        replicas that die under traffic.
        """
        count = self._consecutive_faults.get(name, 0) + 1
        self._consecutive_faults[name] = count
        if count >= self.fault_threshold and name in self._replicas:
            self._declare_dead(name, "transport_faults")

    # -- fabric-target surface (what WsClient needs) -----------------------------

    def endpoint_for(self, service_name: str) -> str:
        return f"{SoapFabric.SCHEME}{self.host.name}/{service_name}"

    def wsdl(self, service_name: str) -> bytes:
        """The service's WSDL, advertising the *router* endpoint.

        The interface description comes from whichever replica holds
        the deployed service; the endpoint is rewritten to the router's
        so wsimport-generated stubs route instead of pinning a replica.
        """
        order = self.ring.preference(service_name) or self.replicas()
        for name in order:
            try:
                svc = self._replicas[name].server.service(service_name)
            except ServiceNotFound:
                continue
            return generate_wsdl(svc.description,
                                 self.endpoint_for(service_name))
        raise ServiceNotFound(
            f"service {service_name!r} not deployed on any replica")

    # -- routing -----------------------------------------------------------------

    def choose(self, service_name: str,
               exclude: Sequence[str] = ()) -> Replica:
        """Pick the replica for one request (pure decision, no events).

        Hash owner first; breaker-open replicas are skipped; an
        overloaded owner spills to the least-loaded live candidate
        (ties broken by ring preference, so the choice is a pure
        function of ring + breakers + inflight counts).  *exclude*
        drops replicas this request already failed against, so a
        failover retry walks the preference list forward instead of
        re-dialing the corpse.
        """
        order = self.ring.preference(service_name)
        if not order:
            raise WsError("router has no replicas")
        live = [n for n in order
                if self.breakers.allow(n) and n not in exclude]
        if not live:
            raise WsError(
                f"no live replica for {service_name!r} "
                f"({len(order)} registered, all circuits open)")
        owner = live[0]
        chosen = owner
        if self._inflight[owner] >= self.spill_threshold:
            chosen = min(live, key=lambda n: (self._inflight[n],
                                              live.index(n)))
        if chosen != owner or owner != order[0]:
            # Deviated from the pure hash owner: spilled on load and/or
            # skipped an open breaker.
            self.rebalances += 1
            self._board.gauge("router.rebalances").set(self.rebalances)
            self.bus.emit("router.rebalance", layer="ws",
                          service=service_name, owner=order[0],
                          chosen=chosen,
                          reason=("breaker" if owner != order[0]
                                  else "load"))
        return self._replicas[chosen]

    def transport(self, client: Host, service_name: str, operation: str,
                  params: Dict[str, Any],
                  ctx: Optional[RequestContext] = None,
                  ) -> Generator[Event, None, Any]:
        """The routed wire round-trip (client ↔ router ↔ replica).

        Mirrors :meth:`SoapServer.transport`'s contract so WsClient and
        generated stubs work unchanged: the request envelope travels
        client→router, the router charges its routing CPU, picks a
        replica, (lazily) materializes the service there, proxies the
        call over the router↔replica links, and relays the response —
        or the fault envelope — back to the client.

        With ``self_healing=True`` the dispatch runs as an interruptible
        sub-process so a replica crash can fail over mid-request (see
        :meth:`_transport_healing`); otherwise the pre-healing direct
        path runs, event-for-event identical to what it always was.
        """
        if self.self_healing:
            return self._transport_healing(client, service_name, operation,
                                           params, ctx)
        return self._transport_direct(client, service_name, operation,
                                      params, ctx)

    def _transport_direct(self, client: Host, service_name: str,
                          operation: str, params: Dict[str, Any],
                          ctx: Optional[RequestContext] = None,
                          ) -> Generator[Event, None, Any]:
        request = SoapEnvelope.request(operation, params,
                                       namespace=f"urn:repro:{service_name}")
        # The hop span brackets the *entire* routed exchange — request
        # envelope in, routing decision, proxied call, response (or
        # fault) relay out — so every replica-side span nests under one
        # parent and a cross-replica trace reads as a single tree.
        with span(ctx, "router:hop", router=self.host.name,
                  service=service_name) as hop:
            yield client.send(self.host, request.size(),
                              label=f"route-req:{service_name}.{operation}")
            yield self.host.compute(self.ROUTE_CPU, tag="router")
            replica = self.choose(service_name)
            if hop is not None:
                hop.meta["replica"] = replica.name
            self.requests_routed += 1
            self._admit(replica.name)
            try:
                with span(ctx, "router:route", replica=replica.name,
                          service=service_name):
                    if replica.onserve is not None:
                        # Deploy-on-A / invoke-on-B: build the runtime
                        # from the store before dispatching (free when
                        # local).
                        yield from replica.onserve.ensure_local_service(
                            service_name, ctx)
                    result = yield from replica.server.transport(
                        self.host, service_name, operation, params, ctx)
            except SoapFault as fault:
                if is_retryable(fault):
                    self.breakers.failure(replica.name)
                else:
                    self.breakers.success(replica.name)
                yield from self._relay_fault(client, service_name,
                                             operation, fault)
                raise
            finally:
                self._release(replica.name)
            self.breakers.success(replica.name)
            response = SoapEnvelope.response(operation, result)
            yield self.host.send(client, response.size(),
                                 label=f"route-rsp:{service_name}.{operation}")
        return result

    def _transport_healing(self, client: Host, service_name: str,
                           operation: str, params: Dict[str, Any],
                           ctx: Optional[RequestContext] = None,
                           ) -> Generator[Event, None, Any]:
        """The self-healing routed round-trip.

        Same wire shape as the direct path, with three additions:

        * the replica dispatch runs in a sub-process the crash path can
          interrupt, and a :class:`ReplicaDown` (refused connection or
          mid-request interrupt) fails over to the next preference-list
          survivor under the failover :class:`RetryPolicy`;
        * mutating operations replay under the invocation-dedup table:
          a retried call whose first attempt actually completed returns
          the recorded result instead of double-executing;
        * the overload ladder — spill (in :meth:`choose`), then shed
          with a typed :class:`ServerOverloaded` once every live
          replica's admission queue is at ``shed_limit``, with
          router-level backpressure pacing admissions before that.
        """
        request = SoapEnvelope.request(operation, params,
                                       namespace=f"urn:repro:{service_name}")
        with span(ctx, "router:hop", router=self.host.name,
                  service=service_name) as hop:
            yield client.send(self.host, request.size(),
                              label=f"route-req:{service_name}.{operation}")
            yield self.host.compute(self.ROUTE_CPU, tag="router")
            yield from self._check_backpressure()
            # Idempotency key: mutating operations (anything outside
            # READ_OPS) dedup on (request id, service, operation) so a
            # failover replay of an attempt that actually completed
            # returns the recorded result instead of re-executing.
            dkey = None
            if (self.store is not None and ctx is not None
                    and operation not in self.READ_OPS):
                dkey = f"{ctx.request_id}|{service_name}.{operation}"
            self.requests_routed += 1
            rng = self.sim.rng.stream("router:failover")
            tried: List[str] = []
            attempt = 0
            while True:
                if dkey is not None:
                    cached = self.store.dedup_result(dkey)
                    if cached is not None:
                        self.dedup_hits += 1
                        self.bus.emit("router.dedup_hit", layer="ws",
                                      service=service_name,
                                      operation=operation, key=dkey)
                        result = cached
                        break
                try:
                    replica = self.choose(service_name, exclude=tried)
                except WsError as exc:
                    fault = self._fault_for(ReplicaDown(
                        f"no live replica left for {service_name!r}: {exc}"))
                    yield from self._relay_fault(client, service_name,
                                                 operation, fault)
                    raise fault
                if (self.shed_limit is not None
                        and self._inflight[replica.name] >= self.shed_limit):
                    # Even the least-loaded candidate is saturated:
                    # shed instead of queueing toward collapse.
                    self.sheds += 1
                    self._board.gauge("router.sheds").set(self.sheds)
                    self.bus.emit("router.shed", layer="ws",
                                  service=service_name, operation=operation,
                                  replica=replica.name,
                                  inflight=self._inflight[replica.name])
                    fault = self._fault_for(ServerOverloaded(
                        f"all replicas at admission limit "
                        f"{self.shed_limit} for {service_name!r}"))
                    yield from self._relay_fault(client, service_name,
                                                 operation, fault)
                    raise fault
                if hop is not None:
                    hop.meta["replica"] = replica.name
                self._admit(replica.name)
                proc = self.sim.process(
                    self._proxy(replica, service_name, operation, params,
                                ctx, dkey),
                    name=f"router:proxy:{service_name}.{operation}")
                self._inflight_procs.setdefault(replica.name,
                                                set()).add(proc)
                crash: Optional[ReplicaDown] = None
                try:
                    result = yield proc
                except Interrupt as intr:
                    cause = intr.cause
                    if not isinstance(cause, ReplicaDown):
                        raise
                    crash = cause
                except ReplicaDown as exc:
                    crash = exc
                except SoapFault as fault:
                    # Application-level fault: the replica answered, so
                    # it is alive — relay the fault as the direct path
                    # would, never fail over on it.
                    if is_retryable(fault):
                        self.breakers.failure(replica.name)
                    else:
                        self.breakers.success(replica.name)
                    self._consecutive_faults.pop(replica.name, None)
                    yield from self._relay_fault(client, service_name,
                                                 operation, fault)
                    raise
                finally:
                    procs = self._inflight_procs.get(replica.name)
                    if procs is not None:
                        procs.discard(proc)
                    self._release(replica.name)
                if crash is None:
                    self.breakers.success(replica.name)
                    self._consecutive_faults.pop(replica.name, None)
                    break
                # Crash signal: count it (fault_threshold consecutive
                # faults declare the replica dead ahead of lease
                # expiry), then walk the preference list forward.
                self.breakers.failure(replica.name)
                self._note_transport_fault(replica.name)
                tried.append(replica.name)
                attempt += 1
                if attempt >= self.failover_policy.max_attempts:
                    fault = self._fault_for(ReplicaDown(
                        f"request failed over {attempt} times "
                        f"(last: {crash})"))
                    yield from self._relay_fault(client, service_name,
                                                 operation, fault)
                    raise fault
                self.failovers += 1
                self.bus.emit("router.failover", layer="ws",
                              service=service_name, operation=operation,
                              from_replica=replica.name, attempt=attempt)
                yield self.sim.timeout(
                    self.failover_policy.backoff(attempt, rng=rng),
                    name="router:failover-backoff")
            response = SoapEnvelope.response(operation, result)
            yield self.host.send(client, response.size(),
                                 label=f"route-rsp:{service_name}.{operation}")
        return result

    def _proxy(self, replica: Replica, service_name: str, operation: str,
               params: Dict[str, Any], ctx: Optional[RequestContext],
               dkey: Optional[str]) -> Generator[Event, None, Any]:
        """One dispatch attempt against one replica (interruptible).

        Runs as its own process so :meth:`kill_inflight` can interrupt
        it when the replica crashes.  A replica that already crashed
        refuses the connection outright.  The dedup record is written in
        the same frame the replica's response returns — no yield in
        between — so a crash can never land between "executed" and
        "recorded".
        """
        if replica.crashed:
            raise ReplicaDown(f"connection refused by {replica.name!r}")
        with span(ctx, "router:route", replica=replica.name,
                  service=service_name):
            if replica.onserve is not None:
                yield from replica.onserve.ensure_local_service(
                    service_name, ctx)
            result = yield from replica.server.transport(
                self.host, service_name, operation, params, ctx)
        if dkey is not None and self.store is not None:
            self.store.record_dedup(dkey, replica.name, result,
                                    self.sim.now)
        return result

    # -- admission / overload helpers --------------------------------------------

    def _admit(self, name: str) -> None:
        """Count one request into *name*'s admission queue (gauges)."""
        self._inflight[name] += 1
        self._queue_gauge.adjust(1)
        self._board.gauge("router.inflight", unit="reqs",
                          labels={"replica": name}
                          ).set(self._inflight[name])

    def _release(self, name: str) -> None:
        """Undo :meth:`_admit` — tolerant of a concurrent removal.

        If the replica was removed (crash declared, drain completed)
        while this request unwound, its gauges were already cleared by
        :meth:`remove_replica`; decrementing again would leave ghost
        negative counts, so a missing entry is a no-op.
        """
        if name not in self._inflight:
            return
        self._inflight[name] -= 1
        self._queue_gauge.adjust(-1)
        self._board.gauge("router.inflight", unit="reqs",
                          labels={"replica": name}
                          ).set(self._inflight[name])
        self._notify_drain(name)

    def _check_backpressure(self) -> Generator[Event, None, None]:
        """Router-level backpressure: pace admissions before shedding.

        When total in-flight crosses ``backpressure_threshold`` the
        router delays new admissions by one failover base-delay — a
        gentle brake that flattens arrival bursts so the shed limit is
        the last resort, not the first.  Hysteresis (clear two below
        the threshold) keeps the gauge from flapping.
        """
        if self.backpressure_threshold is None:
            return
        total = sum(self._inflight.values())
        if total >= self.backpressure_threshold:
            if not self._backpressured:
                self._backpressured = True
                self._board.gauge("router.backpressure").set(1)
                self.bus.emit("router.backpressure", layer="ws",
                              inflight=total,
                              threshold=self.backpressure_threshold)
            yield self.sim.timeout(self.failover_policy.base_delay,
                                   name="router:backpressure")
        elif (self._backpressured
              and total <= max(0, self.backpressure_threshold - 2)):
            self._backpressured = False
            self._board.gauge("router.backpressure").set(0)
            self.bus.emit("router.backpressure_clear", layer="ws",
                          inflight=total)

    @staticmethod
    def _fault_for(exc: WsError) -> SoapFault:
        """Wrap a router-side error the way the server pipeline would.

        Same ``"TypeName: message"`` detail convention, so the client
        side classifies router faults (ReplicaDown, ServerOverloaded)
        through the standard :attr:`SoapFault.root_cause` machinery.
        """
        message = str(exc)
        fault = SoapFault(faultcode="Server",
                          faultstring=message or type(exc).__name__,
                          detail=(f"{type(exc).__name__}: {message}"
                                  if message else type(exc).__name__))
        fault.__cause__ = exc
        return fault

    def _relay_fault(self, client: Host, service_name: str, operation: str,
                     fault: SoapFault) -> Generator[Event, None, None]:
        envelope = SoapEnvelope.fault_response(fault)
        yield self.host.send(client, envelope.size(),
                             label=f"route-fault:{service_name}"
                                   f".{operation}")

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<RequestRouter replicas={self.replicas()} "
                f"routed={self.requests_routed} "
                f"rebalances={self.rebalances}>")
