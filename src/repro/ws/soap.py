"""SOAP envelopes: request/response/fault encoding and decoding.

A simplified SOAP 1.1, RPC-style: the body holds one operation element
whose children are typed parameters.  Faults carry faultcode,
faultstring and detail.  Envelopes round-trip exactly, and their encoded
byte size is what the simulated transport charges to the network.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Dict, Optional

from repro.errors import SoapFault, WsError
from repro.ws.xmlcodec import element_to_value, parse, render, value_to_element

__all__ = ["SoapEnvelope"]

_ENV_TAG = "Envelope"
_BODY_TAG = "Body"
_FAULT_TAG = "Fault"
_RESULT_SUFFIX = "Response"


class SoapEnvelope:
    """One SOAP message: an operation call, a response, or a fault."""

    def __init__(self, operation: str, params: Dict[str, Any],
                 namespace: str = "urn:repro",
                 is_response: bool = False,
                 fault: Optional[SoapFault] = None):
        self.operation = operation
        self.params = params
        self.namespace = namespace
        self.is_response = is_response
        self.fault = fault

    # -- constructors ---------------------------------------------------------

    @classmethod
    def request(cls, operation: str, params: Dict[str, Any],
                namespace: str = "urn:repro") -> "SoapEnvelope":
        return cls(operation, params, namespace)

    @classmethod
    def response(cls, operation: str, result: Any,
                 namespace: str = "urn:repro") -> "SoapEnvelope":
        return cls(operation + _RESULT_SUFFIX, {"return": result},
                   namespace, is_response=True)

    @classmethod
    def fault_response(cls, fault: SoapFault,
                       namespace: str = "urn:repro") -> "SoapEnvelope":
        return cls(_FAULT_TAG, {}, namespace, is_response=True, fault=fault)

    # -- codec ------------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to XML bytes."""
        env = ET.Element(_ENV_TAG)
        env.set("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/")
        body = ET.SubElement(env, _BODY_TAG)
        if self.fault is not None:
            fault = ET.SubElement(body, _FAULT_TAG)
            ET.SubElement(fault, "faultcode").text = self.fault.faultcode
            ET.SubElement(fault, "faultstring").text = self.fault.faultstring
            ET.SubElement(fault, "detail").text = self.fault.detail
        else:
            op = ET.SubElement(body, self.operation)
            # Stored as a plain attribute (not xmlns) so ElementTree does
            # not qualify every descendant tag with the namespace.
            op.set("namespace", self.namespace)
            for name, value in self.params.items():
                op.append(value_to_element(name, value))
        return render(env)

    @classmethod
    def decode(cls, data: bytes) -> "SoapEnvelope":
        """Parse XML bytes back into an envelope.

        A fault envelope decodes into an object whose ``fault`` attribute
        is set; it is the *caller's* choice to raise it.
        """
        root = parse(data)
        if root.tag != _ENV_TAG:
            raise WsError(f"not a SOAP envelope (root {root.tag!r})")
        body = root.find(_BODY_TAG)
        if body is None or len(body) != 1:
            raise WsError("SOAP body must contain exactly one element")
        payload = body[0]
        if payload.tag == _FAULT_TAG:
            fault = SoapFault(
                faultcode=_text(payload, "faultcode"),
                faultstring=_text(payload, "faultstring"),
                detail=_text(payload, "detail"),
            )
            return cls.fault_response(fault)
        params = {child.tag: element_to_value(child) for child in payload}
        namespace = payload.get("namespace", "urn:repro")
        is_response = payload.tag.endswith(_RESULT_SUFFIX)
        return cls(payload.tag, params, namespace, is_response=is_response)

    # -- helpers -------------------------------------------------------------------

    def result(self) -> Any:
        """The return value of a response envelope (raises its fault)."""
        if self.fault is not None:
            raise self.fault
        if not self.is_response:
            raise WsError("not a response envelope")
        return self.params.get("return")

    def size(self) -> int:
        """Encoded size in bytes (drives the simulated transport)."""
        return len(self.encode())

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        kind = "fault" if self.fault else ("rsp" if self.is_response else "req")
        return f"<SoapEnvelope {kind} {self.operation!r}>"


def _text(parent: ET.Element, tag: str) -> str:
    node = parent.find(tag)
    return (node.text or "") if node is not None else ""
