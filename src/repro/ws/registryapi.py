"""Service description model: parameters, operations, services.

These are the objects the rest of the stack agrees on: the portal
collects a :class:`ParameterSpec` list from the upload form (Figure 3's
"Parameter-Name / Parameter-Type" rows), the service builder turns them
into a :class:`ServiceDescription`, WSDL generation renders that
description, and the UDDI registry publishes it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.errors import WsError
from repro.ws.xmlcodec import XSD_TYPES

__all__ = ["ParameterSpec", "OperationSpec", "ServiceDescription"]


class ParameterSpec:
    """A named, XSD-typed parameter."""

    __slots__ = ("name", "xsd_type")

    def __init__(self, name: str, xsd_type: str = "xsd:string"):
        if not name or not name.replace("_", "").isalnum():
            raise WsError(f"invalid parameter name {name!r}")
        if xsd_type not in XSD_TYPES:
            raise WsError(f"unsupported parameter type {xsd_type!r}")
        self.name = name
        self.xsd_type = xsd_type

    def validate(self, value: Any) -> None:
        """Raise :class:`WsError` if *value* does not fit this parameter."""
        expected = XSD_TYPES[self.xsd_type]
        if expected is int and isinstance(value, bool):
            raise WsError(f"parameter {self.name!r}: bool is not xsd:int")
        if expected is float and isinstance(value, int) and not isinstance(value, bool):
            return  # ints are acceptable doubles
        if expected is bytes and isinstance(value, bytearray):
            return
        if not isinstance(value, expected):
            raise WsError(
                f"parameter {self.name!r} expects {self.xsd_type}, "
                f"got {type(value).__name__}")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ParameterSpec)
                and (other.name, other.xsd_type) == (self.name, self.xsd_type))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Param {self.name}:{self.xsd_type}>"


class OperationSpec:
    """One operation: name, input parameters, return type."""

    __slots__ = ("name", "params", "return_type")

    def __init__(self, name: str, params: Sequence[ParameterSpec] = (),
                 return_type: str = "xsd:string"):
        if not name or not name.replace("_", "").isalnum():
            raise WsError(f"invalid operation name {name!r}")
        if return_type not in XSD_TYPES:
            raise WsError(f"unsupported return type {return_type!r}")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise WsError(f"duplicate parameter names in {name!r}")
        self.name = name
        self.params = tuple(params)
        self.return_type = return_type

    def validate_arguments(self, arguments: Dict[str, Any]) -> None:
        """Check an argument dict against the parameter list."""
        expected = {p.name for p in self.params}
        got = set(arguments)
        if expected != got:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise WsError(
                f"operation {self.name!r}: missing={missing} unexpected={extra}")
        for p in self.params:
            p.validate(arguments[p.name])

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, OperationSpec)
                and other.name == self.name
                and other.params == self.params
                and other.return_type == self.return_type)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        sig = ", ".join(f"{p.name}:{p.xsd_type}" for p in self.params)
        return f"<Operation {self.name}({sig}) -> {self.return_type}>"


class ServiceDescription:
    """A deployable service: a named set of operations."""

    def __init__(self, name: str, operations: Sequence[OperationSpec],
                 namespace: Optional[str] = None, documentation: str = ""):
        if not name or not name.replace("_", "").replace("-", "").isalnum():
            raise WsError(f"invalid service name {name!r}")
        if not operations:
            raise WsError(f"service {name!r} needs at least one operation")
        op_names = [op.name for op in operations]
        if len(set(op_names)) != len(op_names):
            raise WsError(f"duplicate operation names in service {name!r}")
        self.name = name
        self.operations = tuple(operations)
        self.namespace = namespace or f"urn:repro:{name}"
        self.documentation = documentation

    def operation(self, name: str) -> OperationSpec:
        for op in self.operations:
            if op.name == name:
                return op
        raise WsError(f"service {self.name!r} has no operation {name!r}")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ServiceDescription)
                and other.name == self.name
                and other.operations == self.operations
                and other.namespace == self.namespace)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Service {self.name!r} ops={[o.name for o in self.operations]}>"
