"""The SOAP server: service deployment and request dispatch.

A :class:`SoapServer` lives on a simulated host (the appliance's Tomcat
stand-in).  Services are deployed with a
:class:`~repro.ws.registryapi.ServiceDescription` plus a *handler*
callable; invocations are full simulation processes that

1. move the real encoded request envelope over the network,
2. charge the server CPU for parsing/dispatch (scaled by message size),
3. run the handler (which may itself be a simulation process — the
   generated GridService handler submits grid jobs and takes minutes),
4. move the real encoded response (or fault) back to the client.

:class:`SoapFabric` is the name service mapping ``soap://host/Service``
endpoints to server objects, standing in for DNS+TCP connection setup.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.errors import ReproError, ServiceNotFound, SoapFault, WsError
from repro.hardware.host import Host
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.units import KB
from repro.ws.registryapi import ServiceDescription
from repro.ws.soap import SoapEnvelope
from repro.ws.wsdl import generate_wsdl

__all__ = ["SoapFabric", "SoapServer", "DeployedService"]

#: Handler signature: (operation_name, arguments) -> value | generator.
Handler = Callable[[str, Dict[str, Any]], Any]


class SoapFabric:
    """Endpoint resolution: ``soap://<host>/<Service>`` -> server object."""

    SCHEME = "soap://"

    def __init__(self) -> None:
        self._servers: Dict[str, "SoapServer"] = {}

    def register(self, server: "SoapServer") -> None:
        if server.host.name in self._servers:
            raise WsError(f"a SOAP server is already bound on {server.host.name!r}")
        self._servers[server.host.name] = server

    def unregister(self, server: "SoapServer") -> None:
        self._servers.pop(server.host.name, None)

    def resolve(self, endpoint: str) -> Tuple["SoapServer", str]:
        """Split an endpoint URL into (server, service_name)."""
        if not endpoint.startswith(self.SCHEME):
            raise WsError(f"bad endpoint {endpoint!r}")
        rest = endpoint[len(self.SCHEME):]
        if "/" not in rest:
            raise WsError(f"endpoint {endpoint!r} lacks a service path")
        hostname, service = rest.split("/", 1)
        server = self._servers.get(hostname)
        if server is None:
            raise ServiceNotFound(f"no SOAP server on host {hostname!r}")
        return server, service


class DeployedService:
    """A live service on a server."""

    __slots__ = ("description", "handler", "deployed_at", "invocations",
                 "faults")

    def __init__(self, description: ServiceDescription, handler: Handler,
                 deployed_at: float):
        self.description = description
        self.handler = handler
        self.deployed_at = deployed_at
        self.invocations = 0
        self.faults = 0


class SoapServer:
    """A SOAP service container on one host."""

    #: CPU seconds to parse+dispatch one KB of envelope (streaming XML
    #: parsers handle ~5 MB/s of base64-heavy payload per core).
    PARSE_CPU_PER_KB = 0.0002
    #: Fixed CPU per request (container overhead: thread, session, ...).
    DISPATCH_CPU = 0.01

    def __init__(self, host: Host, fabric: Optional[SoapFabric] = None,
                 name: str = "soap"):
        self.host = host
        self.sim = host.sim
        self.name = name
        self.fabric = fabric
        if fabric is not None:
            fabric.register(self)
        self._services: Dict[str, DeployedService] = {}
        self.requests_served = 0

    # -- deployment -----------------------------------------------------------

    def deploy(self, description: ServiceDescription, handler: Handler) -> str:
        """Deploy a service; returns its endpoint URL."""
        if description.name in self._services:
            raise WsError(f"service {description.name!r} already deployed")
        self._services[description.name] = DeployedService(
            description, handler, self.sim.now)
        return self.endpoint_for(description.name)

    def undeploy(self, service_name: str) -> None:
        if service_name not in self._services:
            raise ServiceNotFound(f"service {service_name!r} not deployed")
        del self._services[service_name]

    def endpoint_for(self, service_name: str) -> str:
        return f"{SoapFabric.SCHEME}{self.host.name}/{service_name}"

    def services(self) -> list[str]:
        return sorted(self._services)

    def service(self, name: str) -> DeployedService:
        svc = self._services.get(name)
        if svc is None:
            raise ServiceNotFound(
                f"service {name!r} not deployed on {self.host.name!r}")
        return svc

    def wsdl(self, service_name: str) -> bytes:
        """The WSDL document for a deployed service."""
        svc = self.service(service_name)
        return generate_wsdl(svc.description, self.endpoint_for(service_name))

    # -- invocation ---------------------------------------------------------------

    def invoke_from(self, client: Host, service_name: str, operation: str,
                    params: Dict[str, Any]) -> Process:
        """Invoke ``service.operation(params)`` from *client*.

        Returns a simulation process whose value is the operation's
        return value; SOAP faults raise :class:`SoapFault` in the caller.
        """

        def call() -> Generator[Event, None, Any]:
            request = SoapEnvelope.request(operation, params,
                                           namespace=f"urn:repro:{service_name}")
            request_bytes = request.size()
            yield client.send(self.host, request_bytes,
                              label=f"soap-req:{service_name}.{operation}")
            response = yield self.sim.process(
                self._serve(request_bytes, service_name, operation, params))
            yield self.host.send(client, response.size(),
                                 label=f"soap-rsp:{service_name}.{operation}")
            return response.result()  # raises the fault, if any

        return self.sim.process(call(),
                                name=f"invoke:{service_name}.{operation}")

    def _serve(self, request_bytes: int, service_name: str, operation: str,
               params: Dict[str, Any]) -> Generator[Event, None, SoapEnvelope]:
        """Server-side half: parse, validate, run handler, build response."""
        yield self.host.compute(
            self.DISPATCH_CPU + self.PARSE_CPU_PER_KB * request_bytes / KB(1),
            tag="soap")
        self.requests_served += 1
        try:
            svc = self.service(service_name)
            spec = svc.description.operation(operation)
            spec.validate_arguments(params)
            svc.invocations += 1
            result = svc.handler(operation, dict(params))
            if inspect.isgenerator(result):
                result = yield self.sim.process(
                    result, name=f"handler:{service_name}.{operation}")
            return SoapEnvelope.response(operation, result)
        except SoapFault as fault:
            self._count_fault(service_name)
            return SoapEnvelope.fault_response(fault)
        except Exception as exc:
            # Any handler exception becomes a fault on the wire — a SOAP
            # container never lets implementation errors kill the
            # connection.  Library errors keep their type in the detail;
            # unexpected ones are marked as such.
            self._count_fault(service_name)
            code = "Server" if isinstance(exc, ReproError) else "Server.Internal"
            return SoapEnvelope.fault_response(SoapFault(
                faultcode=code,
                faultstring=str(exc) or type(exc).__name__,
                detail=type(exc).__name__,
            ))

    def _count_fault(self, service_name: str) -> None:
        svc = self._services.get(service_name)
        if svc is not None:
            svc.faults += 1

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<SoapServer {self.host.name!r} services={self.services()}>"
