"""The SOAP server: service deployment and request dispatch.

A :class:`SoapServer` lives on a simulated host (the appliance's Tomcat
stand-in).  Services are deployed with a
:class:`~repro.ws.registryapi.ServiceDescription` plus a *handler*
callable; invocations are full simulation processes that

1. move the real encoded request envelope over the network,
2. charge the server CPU for parsing/dispatch (scaled by message size),
3. run the request through the server's interceptor
   :class:`~repro.ws.pipeline.Pipeline` (fault translation, metrics,
   admission control, tracing, deadline) around the handler dispatch,
4. run the handler (which may itself be a simulation process — the
   generated GridService handler submits grid jobs and takes minutes),
5. move the real encoded response (or fault) back to the client.

:class:`SoapFabric` is the name service mapping ``soap://host/Service``
endpoints to server objects, standing in for DNS+TCP connection setup.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.core.context import RequestContext
from repro.errors import ServiceNotFound, SoapFault, WsError
from repro.hardware.host import Host
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.telemetry.metrics import MetricsRegistry
from repro.units import KB
from repro.ws.pipeline import (
    AdmissionControlInterceptor, DeadlineInterceptor,
    FaultTranslationInterceptor, Invocation, MetricsInterceptor, Pipeline,
    TracingInterceptor,
)
from repro.ws.registryapi import ServiceDescription
from repro.ws.soap import SoapEnvelope
from repro.ws.wsdl import generate_wsdl

__all__ = ["SoapFabric", "SoapServer", "DeployedService"]

#: Handler signature: ``(operation_name, arguments)`` or, for
#: context-aware handlers, ``(operation_name, arguments, ctx)``
#: -> value | generator.
Handler = Callable[..., Any]


def _handler_wants_context(handler: Handler) -> bool:
    """True if *handler* accepts the request context as a third argument.

    Decided once at deploy time so the per-request dispatch stays a
    plain call.  Existing two-argument handlers keep working unchanged.
    """
    try:
        sig = inspect.signature(handler)
    except (TypeError, ValueError):  # builtins without signatures
        return False
    positional = 0
    for param in sig.parameters.values():
        if param.kind == param.VAR_POSITIONAL:
            return True
        if param.name == "ctx":
            return True
        if param.kind in (param.POSITIONAL_ONLY, param.POSITIONAL_OR_KEYWORD):
            positional += 1
    return positional >= 3


class SoapFabric:
    """Endpoint resolution: ``soap://<host>/<Service>`` -> server object."""

    SCHEME = "soap://"

    def __init__(self) -> None:
        self._servers: Dict[str, "SoapServer"] = {}

    def register(self, server: "SoapServer") -> None:
        if server.host.name in self._servers:
            raise WsError(f"a SOAP server is already bound on {server.host.name!r}")
        self._servers[server.host.name] = server

    def unregister(self, server: "SoapServer") -> None:
        self._servers.pop(server.host.name, None)

    def resolve(self, endpoint: str) -> Tuple["SoapServer", str]:
        """Split an endpoint URL into (server, service_name)."""
        if not endpoint.startswith(self.SCHEME):
            raise WsError(f"bad endpoint {endpoint!r}")
        rest = endpoint[len(self.SCHEME):]
        if "/" not in rest:
            raise WsError(f"endpoint {endpoint!r} lacks a service path")
        hostname, service = rest.split("/", 1)
        if not service:
            raise WsError(f"endpoint {endpoint!r} has an empty service path")
        server = self._servers.get(hostname)
        if server is None:
            raise ServiceNotFound(f"no SOAP server on host {hostname!r}")
        return server, service


class DeployedService:
    """A live service on a server."""

    __slots__ = ("description", "handler", "deployed_at", "invocations",
                 "faults", "wants_context")

    def __init__(self, description: ServiceDescription, handler: Handler,
                 deployed_at: float):
        self.description = description
        self.handler = handler
        self.deployed_at = deployed_at
        self.invocations = 0
        self.faults = 0
        self.wants_context = _handler_wants_context(handler)


class SoapServer:
    """A SOAP service container on one host."""

    #: CPU seconds to parse+dispatch one KB of envelope (streaming XML
    #: parsers handle ~5 MB/s of base64-heavy payload per core).
    PARSE_CPU_PER_KB = 0.0002
    #: Fixed CPU per request (container overhead: thread, session, ...).
    DISPATCH_CPU = 0.01

    def __init__(self, host: Host, fabric: Optional[SoapFabric] = None,
                 name: str = "soap"):
        self.host = host
        self.sim = host.sim
        self.name = name
        self.fabric = fabric
        if fabric is not None:
            fabric.register(self)
        self._services: Dict[str, DeployedService] = {}
        self._undeploy_listeners: List[Callable[[str], None]] = []
        self.requests_served = 0
        #: Per-operation latency/fault metrics, fed by the pipeline.
        self.metrics = MetricsRegistry(name=f"{name}@{host.name}")
        self.admission = AdmissionControlInterceptor(self.sim)
        #: The server-side interceptor chain every request runs through.
        #: Fault translation sits outermost so any exception — including
        #: admission rejects and deadline expirations — still becomes a
        #: fault envelope that travels back over the wire.
        self.pipeline = Pipeline([
            FaultTranslationInterceptor(
                on_fault=lambda inv: self._count_fault(inv.service_name)),
            MetricsInterceptor(self.sim, registry=self.metrics,
                               origin=host.name),
            self.admission,
            TracingInterceptor(),
            DeadlineInterceptor(self.sim),
        ])

    # -- deployment -----------------------------------------------------------

    def deploy(self, description: ServiceDescription, handler: Handler) -> str:
        """Deploy a service; returns its endpoint URL."""
        if description.name in self._services:
            raise WsError(f"service {description.name!r} already deployed")
        self._services[description.name] = DeployedService(
            description, handler, self.sim.now)
        return self.endpoint_for(description.name)

    def undeploy(self, service_name: str) -> None:
        if service_name not in self._services:
            raise ServiceNotFound(f"service {service_name!r} not deployed")
        del self._services[service_name]
        for listener in list(self._undeploy_listeners):
            listener(service_name)

    def update_description(self, service_name: str,
                           description: ServiceDescription) -> None:
        """Swap a deployed service's interface in place (hot redeploy).

        The replacement-upload path uses this when a re-uploaded
        executable declares a new description or parameter spec: the
        handler, endpoint and usage counters survive, but dispatch
        validation and the generated WSDL reflect the new interface
        immediately.
        """
        svc = self.service(service_name)
        if description.name != service_name:
            raise WsError(
                f"cannot redeploy {service_name!r} under the name "
                f"{description.name!r}")
        svc.description = description

    def on_undeploy(self, listener: Callable[[str], None]) -> None:
        """Register *listener(service_name)* to run after each undeploy.

        Teardown cleanup (UDDI unpublish, registry erasure) hangs off
        this hook so it happens no matter which path undeploys the
        service — previously a direct :meth:`undeploy` left stale UDDI
        bindingTemplates behind.
        """
        self._undeploy_listeners.append(listener)

    def remove_undeploy_listener(self, listener: Callable[[str], None]) -> None:
        """Detach an undeploy listener (idempotent)."""
        try:
            self._undeploy_listeners.remove(listener)
        except ValueError:
            pass

    def endpoint_for(self, service_name: str) -> str:
        return f"{SoapFabric.SCHEME}{self.host.name}/{service_name}"

    def services(self) -> list[str]:
        return sorted(self._services)

    def service(self, name: str) -> DeployedService:
        svc = self._services.get(name)
        if svc is None:
            raise ServiceNotFound(
                f"service {name!r} not deployed on {self.host.name!r}")
        return svc

    def wsdl(self, service_name: str) -> bytes:
        """The WSDL document for a deployed service."""
        svc = self.service(service_name)
        return generate_wsdl(svc.description, self.endpoint_for(service_name))

    # -- invocation ---------------------------------------------------------------

    def invoke_from(self, client: Host, service_name: str, operation: str,
                    params: Dict[str, Any],
                    ctx: Optional[RequestContext] = None) -> Process:
        """Invoke ``service.operation(params)`` from *client*.

        Returns a simulation process whose value is the operation's
        return value; SOAP faults raise :class:`SoapFault` in the caller.
        (:class:`~repro.ws.client.WsClient` wraps :meth:`transport` in
        its own pipeline instead, so client-side interceptors run too.)
        """
        return self.sim.process(
            self.transport(client, service_name, operation, params, ctx),
            name=f"invoke:{service_name}.{operation}")

    def transport(self, client: Host, service_name: str, operation: str,
                  params: Dict[str, Any],
                  ctx: Optional[RequestContext] = None,
                  ) -> Generator[Event, None, Any]:
        """The wire round-trip, as a generator for embedding in a process:

        encode + send the request envelope, serve it on this host, send
        the response back, unwrap it (raising the fault, if any).
        """
        request = SoapEnvelope.request(operation, params,
                                       namespace=f"urn:repro:{service_name}")
        request_bytes = request.size()
        yield client.send(self.host, request_bytes,
                          label=f"soap-req:{service_name}.{operation}")
        response = yield self.sim.process(
            self._serve(request_bytes, service_name, operation, params, ctx))
        yield self.host.send(client, response.size(),
                             label=f"soap-rsp:{service_name}.{operation}")
        return response.result()  # raises the fault, if any

    def _serve(self, request_bytes: int, service_name: str, operation: str,
               params: Dict[str, Any],
               ctx: Optional[RequestContext] = None,
               ) -> Generator[Event, None, SoapEnvelope]:
        """Server-side half: parse, then pipeline around the dispatch.

        Always returns an envelope — the outermost fault-translation
        interceptor turns any exception into a fault envelope, which
        travels back over the network like a regular response.
        """
        yield self.host.compute(
            self.DISPATCH_CPU + self.PARSE_CPU_PER_KB * request_bytes / KB(1),
            tag="soap")
        self.requests_served += 1
        inv = Invocation(ctx, service_name, operation, params, side="server",
                         request_bytes=request_bytes)
        return (yield from self.pipeline.run(inv, self._dispatch))

    def _dispatch(self, inv: Invocation) -> Generator[Event, None, SoapEnvelope]:
        """Pipeline terminal: validate, run the handler, build the response."""
        svc = self.service(inv.service_name)
        spec = svc.description.operation(inv.operation)
        spec.validate_arguments(inv.params)
        svc.invocations += 1
        if svc.wants_context:
            result = svc.handler(inv.operation, dict(inv.params), inv.ctx)
        else:
            result = svc.handler(inv.operation, dict(inv.params))
        if inspect.isgenerator(result):
            result = yield self.sim.process(
                result, name=f"handler:{inv.service_name}.{inv.operation}")
        return SoapEnvelope.response(inv.operation, result)

    def _count_fault(self, service_name: str) -> None:
        svc = self._services.get(service_name)
        if svc is not None:
            svc.faults += 1

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<SoapServer {self.host.name!r} services={self.services()}>"
