"""Typed value <-> XML element codec (the XSD simple types we need)."""

from __future__ import annotations

import base64
import re
import xml.etree.ElementTree as ET
from typing import Any, Optional

from repro.errors import WsError

#: Characters string values may not contain: what XML 1.0 cannot carry at
#: all, plus bare carriage returns (XML parsers normalize them to \n, so
#: they would not round-trip — callers should use \n line endings).
_XML_FORBIDDEN = re.compile(
    "[\x00-\x08\x0b-\x0c\x0d\x0e-\x1f\ud800-\udfff￾￿]")

__all__ = ["XSD_TYPES", "python_to_xsd", "value_to_element",
           "element_to_value", "render", "parse"]

#: Supported XSD simple types and their Python equivalents.
XSD_TYPES = {
    "xsd:string": str,
    "xsd:int": int,
    "xsd:long": int,
    "xsd:double": float,
    "xsd:boolean": bool,
    "xsd:base64Binary": bytes,
}


def python_to_xsd(value: Any) -> str:
    """Infer an XSD type name from a Python value."""
    if isinstance(value, bool):
        return "xsd:boolean"
    if isinstance(value, int):
        return "xsd:int"
    if isinstance(value, float):
        return "xsd:double"
    if isinstance(value, str):
        return "xsd:string"
    if isinstance(value, (bytes, bytearray)):
        return "xsd:base64Binary"
    raise WsError(f"no XSD mapping for {type(value).__name__}")


def value_to_element(name: str, value: Any,
                     xsd_type: Optional[str] = None) -> ET.Element:
    """Encode *value* as ``<name xsi:type="...">text</name>``."""
    xsd_type = xsd_type or python_to_xsd(value)
    if xsd_type not in XSD_TYPES:
        raise WsError(f"unsupported XSD type {xsd_type!r}")
    elem = ET.Element(name)
    elem.set("type", xsd_type)
    if value is None:
        elem.set("nil", "true")
    elif xsd_type == "xsd:boolean":
        elem.text = "true" if value else "false"
    elif xsd_type == "xsd:base64Binary":
        elem.text = base64.b64encode(bytes(value)).decode("ascii")
    elif xsd_type == "xsd:double":
        elem.text = repr(float(value))
    else:
        text = str(value)
        if _XML_FORBIDDEN.search(text):
            raise WsError(
                f"string for {name!r} contains characters XML cannot carry")
        elem.text = text
    return elem


def element_to_value(elem: ET.Element) -> Any:
    """Decode an element produced by :func:`value_to_element`."""
    xsd_type = elem.get("type", "xsd:string")
    if xsd_type not in XSD_TYPES:
        raise WsError(f"unsupported XSD type {xsd_type!r}")
    if elem.get("nil") == "true":
        return None
    text = elem.text or ""
    try:
        if xsd_type == "xsd:boolean":
            if text not in ("true", "false", "1", "0"):
                raise ValueError(text)
            return text in ("true", "1")
        if xsd_type in ("xsd:int", "xsd:long"):
            return int(text)
        if xsd_type == "xsd:double":
            return float(text)
        if xsd_type == "xsd:base64Binary":
            return base64.b64decode(text.encode("ascii"), validate=True)
        return text
    except (ValueError, base64.binascii.Error) as exc:
        raise WsError(
            f"cannot decode {text[:40]!r} as {xsd_type}: {exc}") from None


def render(elem: ET.Element) -> bytes:
    """Serialize an element tree to UTF-8 bytes with an XML declaration."""
    return ET.tostring(elem, encoding="utf-8", xml_declaration=True)


def parse(data: bytes) -> ET.Element:
    """Parse bytes into an element tree, mapping errors to WsError."""
    try:
        return ET.fromstring(data)
    except ET.ParseError as exc:
        raise WsError(f"malformed XML: {exc}") from None
