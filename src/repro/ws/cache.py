"""Client-side invocation caches: discovery, WSDL, generated stubs.

The paper's client workflow (§VII.B) re-runs UDDI discovery, re-fetches
the WSDL document, and re-runs ``wsimport`` on *every* call — exactly
the repeated one-time work JClarens' cached service discovery and
TAAROA's bind-once/execute-many split eliminate.  A :class:`ClientCache`
attached to a :class:`~repro.ws.client.WsClient` memoises all three:

* **discovery** — UDDI pattern -> ``(service_name, endpoint,
  wsdl_location)``, so a warm call skips both inquiry round-trips;
* **wsdl** — endpoint -> document bytes, skipping the document transfer
  over the (thin) appliance uplink;
* **stub** — WSDL digest -> generated class, skipping re-parsing and
  class synthesis (zero simulated cost, real CPU).

Freshness is bounded by a *sim-time* TTL (never wall clock, so cached
runs stay deterministic), and entries are dropped eagerly through the
container's undeploy hook and onServe's republish hook — the
invalidation contract DESIGN.md §9 spells out.  Every lookup emits a
``cache.hit`` / ``cache.miss`` event on the telemetry bus; emission is
observationally pure, so an attached-but-disabled cache cannot perturb
a run (the golden-series guard pins this byte-for-byte).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional, Tuple, Type

from repro.telemetry.events import bus

__all__ = ["ClientCache"]

#: Discovery triple: (service_name, endpoint, wsdl_location).
Discovery = Tuple[str, str, str]

#: Default freshness bound (simulated seconds).
DEFAULT_TTL = 3600.0


class ClientCache:
    """Per-client TTL cache over the discover -> WSDL -> stub pipeline."""

    def __init__(self, sim, ttl: float = DEFAULT_TTL, enabled: bool = True):
        if ttl <= 0:
            raise ValueError("cache ttl must be > 0 (simulated seconds)")
        self.sim = sim
        self.ttl = ttl
        self.enabled = enabled
        self._discovery: Dict[str, Tuple[float, Discovery]] = {}
        self._wsdl: Dict[str, Tuple[float, bytes]] = {}
        self._stubs: Dict[str, Type] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._bus = bus(sim)

    # -- bookkeeping --------------------------------------------------------

    def _record(self, cache: str, key: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        self._bus.emit("cache.hit" if hit else "cache.miss", layer="ws",
                       cache=cache, key=key)

    def _fresh(self, stored_at: float) -> bool:
        return self.sim.now - stored_at < self.ttl

    # -- discovery ----------------------------------------------------------

    def lookup_discovery(self, pattern: str) -> Optional[Discovery]:
        if not self.enabled:
            return None
        entry = self._discovery.get(pattern)
        if entry is not None and self._fresh(entry[0]):
            self._record("discovery", pattern, hit=True)
            return entry[1]
        if entry is not None:  # expired: drop it now
            del self._discovery[pattern]
        self._record("discovery", pattern, hit=False)
        return None

    def store_discovery(self, pattern: str, triple: Discovery) -> None:
        if self.enabled:
            self._discovery[pattern] = (self.sim.now, triple)

    # -- WSDL documents -----------------------------------------------------

    def lookup_wsdl(self, endpoint: str) -> Optional[bytes]:
        if not self.enabled:
            return None
        entry = self._wsdl.get(endpoint)
        if entry is not None and self._fresh(entry[0]):
            self._record("wsdl", endpoint, hit=True)
            return entry[1]
        if entry is not None:
            del self._wsdl[endpoint]
        self._record("wsdl", endpoint, hit=False)
        return None

    def store_wsdl(self, endpoint: str, document: bytes) -> None:
        if self.enabled:
            self._wsdl[endpoint] = (self.sim.now, document)

    # -- generated stubs ----------------------------------------------------

    def stub_class(self, document: bytes) -> Type:
        """The wsimport product for *document*, memoised by digest.

        Stub classes are pure derivations of the WSDL bytes, so the
        digest key makes staleness impossible: a republished service
        with a changed interface has different bytes, hence a new stub.
        """
        from repro.ws.client import generate_stub

        if not self.enabled:
            return generate_stub(document)
        digest = hashlib.sha256(document).hexdigest()
        cached = self._stubs.get(digest)
        if cached is not None:
            self._record("stub", digest[:12], hit=True)
            return cached
        self._record("stub", digest[:12], hit=False)
        stub = generate_stub(document)
        self._stubs[digest] = stub
        return stub

    # -- invalidation -------------------------------------------------------

    def invalidate_service(self, service_name: str) -> None:
        """Drop everything cached about *service_name*.

        Wired to :meth:`repro.ws.server.SoapServer.on_undeploy` and
        :meth:`repro.core.onserve.OnServe.on_republish`, so neither an
        undeployed nor a replaced service can be served stale.
        """
        suffix = f"/{service_name}"
        stale_patterns = [p for p, (_, triple) in self._discovery.items()
                          if triple[0] == service_name]
        stale_endpoints = [e for e in self._wsdl if e.endswith(suffix)]
        for pattern in stale_patterns:
            del self._discovery[pattern]
        for endpoint in stale_endpoints:
            del self._wsdl[endpoint]
        if stale_patterns or stale_endpoints:
            self.invalidations += 1
            self._bus.emit("cache.invalidate", layer="ws",
                           service=service_name,
                           discovery=len(stale_patterns),
                           wsdl=len(stale_endpoints))

    def evict_endpoint(self, endpoint: str) -> None:
        """Drop everything cached *about endpoint* (failover eviction).

        When a call through *endpoint* dies with a transport-level
        fault (``ReplicaDown``), the cached discovery triple and WSDL
        document pointing at it may name a corpse: evict them so the
        next attempt re-resolves through UDDI/the router instead of
        re-dialing from a stale binding.  Stub classes stay — they are
        pure derivations of WSDL bytes, keyed by digest, and carry no
        endpoint.
        """
        stale_patterns = [p for p, (_, triple) in self._discovery.items()
                          if triple[1] == endpoint]
        for pattern in stale_patterns:
            del self._discovery[pattern]
        had_wsdl = endpoint in self._wsdl
        if had_wsdl:
            del self._wsdl[endpoint]
        if stale_patterns or had_wsdl:
            self.invalidations += 1
            self._bus.emit("cache.invalidate", layer="ws",
                           endpoint=endpoint,
                           discovery=len(stale_patterns),
                           wsdl=int(had_wsdl))

    def clear(self) -> None:
        self._discovery.clear()
        self._wsdl.clear()
        self._stubs.clear()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "on" if self.enabled else "off"
        return (f"<ClientCache {state} hits={self.hits} "
                f"misses={self.misses} ttl={self.ttl}>")
