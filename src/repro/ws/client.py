"""Web-service clients: dynamic calls and wsimport-style stubs.

:class:`WsClient` is the dynamic API: give it an endpoint and an
operation, it performs the call (as a simulation process).

:func:`generate_stub` is the paper's ``wsimport`` equivalent: it parses a
WSDL document and *builds a Python class* whose methods mirror the
service's operations, including argument validation against the WSDL
types — so discovering a service in UDDI and calling it is exactly the
workflow of §VII.B.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Type

from repro.core.context import RequestContext, span
from repro.hardware.host import Host
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.telemetry.metrics import MetricsRegistry
from repro.ws.pipeline import (
    DeadlineInterceptor, Invocation, MetricsInterceptor, Pipeline,
    TracingInterceptor,
)
from repro.ws.registryapi import OperationSpec
from repro.ws.server import SoapFabric

__all__ = ["WsClient", "generate_stub"]


class WsClient:
    """A caller bound to a client host and an endpoint fabric."""

    def __init__(self, host: Host, fabric: SoapFabric, cache=None):
        self.host = host
        self.sim = host.sim
        self.fabric = fabric
        #: Optional :class:`~repro.ws.cache.ClientCache` memoising
        #: discovery / WSDL / stub work (None = the faithful hot path).
        self.cache = cache
        self.calls_made = 0
        #: Per-operation metrics as seen from this caller (includes
        #: network time, unlike the server's registry).
        self.metrics = MetricsRegistry(name=f"client@{host.name}")
        #: Client-side interceptor chain around the wire round-trip.
        #: No fault translation here: faults must *raise* in the caller.
        self.pipeline = Pipeline([
            MetricsInterceptor(self.sim, registry=self.metrics,
                               origin=host.name),
            TracingInterceptor(),
            DeadlineInterceptor(self.sim),
        ])

    def call(self, endpoint: str, operation: str,
             ctx: Optional[RequestContext] = None, **params: Any) -> Process:
        """Invoke ``operation`` at *endpoint* (a simulation process).

        *ctx*, when given, rides along to the server: spans open on both
        sides of the wire and the deadline is enforced at each hop.
        """
        server, service_name = self.fabric.resolve(endpoint)
        self.calls_made += 1
        inv = Invocation(ctx, service_name, operation, params, side="client")

        def terminal(inv: Invocation) -> Generator[Event, None, Any]:
            return (yield from server.transport(
                self.host, inv.service_name, inv.operation, inv.params,
                inv.ctx))

        return self.sim.process(self.pipeline.run(inv, terminal),
                                name=f"invoke:{service_name}.{operation}")

    def fetch_wsdl(self, endpoint: str,
                   ctx: Optional[RequestContext] = None) -> Process:
        """Download a service's WSDL document (a simulation process).

        The document travels over the network like any other payload; the
        process-event's value is the WSDL bytes.
        """
        server, service_name = self.fabric.resolve(endpoint)
        document = server.wsdl(service_name)

        def op() -> Generator[Event, None, bytes]:
            with span(ctx, f"client:wsdl.{service_name}"):
                # Small request; the document itself dominates.
                yield self.host.send(server.host, 256, label="wsdl-req")
                yield server.host.send(self.host, len(document),
                                       label="wsdl-doc")
            return document

        return self.sim.process(op(), name=f"fetch-wsdl:{service_name}")


def generate_stub(wsdl_document: bytes) -> Type:
    """Build a client-stub class from a WSDL document (wsimport).

    The returned class is instantiated with a :class:`WsClient`; each
    WSDL operation becomes a method returning a simulation process::

        ServiceStub = generate_stub(wsdl_bytes)
        stub = ServiceStub(ws_client)
        result = yield stub.execute(param1="x")

    Arguments are validated against the WSDL parameter types *before*
    anything touches the network, mirroring the static typing wsimport
    gives Java clients.
    """
    from repro.ws.wsdl import parse_wsdl

    description, endpoint = parse_wsdl(wsdl_document)

    def __init__(self, client: WsClient) -> None:  # noqa: N807
        self._client = client
        self._endpoint = endpoint
        self._description = description

    namespace: Dict[str, Any] = {
        "__init__": __init__,
        "__doc__": (f"wsimport stub for service {description.name!r} "
                    f"at {endpoint}"),
        "ENDPOINT": endpoint,
        "DESCRIPTION": description,
    }

    for op in description.operations:
        namespace[op.name] = _make_method(op)

    return type(f"{description.name}Stub", (), namespace)


def generate_stub_source(wsdl_document: bytes) -> str:
    """Emit *Python source code* for a client stub (wsimport-to-file).

    Where :func:`generate_stub` builds the class in memory, this renders
    it as a standalone ``.py`` module — the "provide the necessary files
    as a download" improvement the paper suggests (§VIII.D.4).  The
    generated module only needs :mod:`repro.ws.client` at run time.
    """
    from repro.ws.wsdl import parse_wsdl

    description, endpoint = parse_wsdl(wsdl_document)
    lines = [
        f'"""Client stub for {description.name!r} — generated by onServe.',
        "",
        f"Endpoint: {endpoint}",
        '"""',
        "",
        "",
        f"class {description.name}Stub:",
        f'    """Calls {description.name} through a repro WsClient."""',
        "",
        f"    ENDPOINT = {endpoint!r}",
        "",
        "    def __init__(self, client):",
        "        self._client = client",
    ]
    for op in description.operations:
        params = "".join(f", {p.name}" for p in op.params)
        sig = ", ".join(f"{p.name}: {p.xsd_type}" for p in op.params)
        call_args = "".join(f", {p.name}={p.name}" for p in op.params)
        lines += [
            "",
            f"    def {op.name}(self{', *' + params if params else ''}"
            ", ctx=None):",
            f'        """Invoke {op.name}({sig}) -> {op.return_type}."""',
            f"        return self._client.call(self.ENDPOINT, "
            f"{op.name!r}{call_args}, ctx=ctx)",
        ]
    return "\n".join(lines) + "\n"


def _make_method(spec: OperationSpec):
    """A stub method for one operation (closure over its spec)."""

    def method(self, ctx: Any = None, **params: Any) -> Process:
        spec.validate_arguments(params)
        return self._client.call(self._endpoint, spec.name, ctx=ctx, **params)

    method.__name__ = spec.name
    sig = ", ".join(f"{p.name}: {p.xsd_type}" for p in spec.params)
    method.__doc__ = f"Invoke {spec.name}({sig}) -> {spec.return_type}"
    return method
