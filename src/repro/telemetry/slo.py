"""Service-level objectives: declarative targets, burn-rate alerting.

The paper's SaaS promise (§VIII) is qualitative — the appliance "serves"
its tenants.  TAAROA frames grid+SOA delivery in QoS/SLA terms instead:
a tenant's experience is only acceptable while measurable objectives
hold.  This module makes that operational for the replica fabric:

* an :class:`SloSpec` declares objectives for a slice of traffic — an
  **availability** target (fault-free fraction of requests) and/or a
  **latency** objective (at least ``latency_quantile`` of requests
  under ``latency_target`` seconds) — scoped by service-name pattern
  and principal;
* an :class:`SloTracker` subscribes to the run's
  :class:`~repro.telemetry.events.EventBus` and maintains, per
  objective, sliding-window good/bad counters over the alerting
  windows *and* the long compliance window;
* **multi-window burn-rate alerting** (:class:`BurnRule`): an alert
  fires when the error budget is being consumed at ≥ ``factor`` times
  the sustainable rate over *both* a short and a long window — the
  short window makes the alert reset quickly after recovery, the long
  one suppresses blips (the SRE-workbook shape: a fast 5m/1h page pair
  plus a slow 6h ticket window).  Transitions emit typed ``slo.burn``
  / ``slo.burn_clear`` events;
* **hard violation** tracking: when compliance over the spec's
  ``compliance_window`` actually drops below target, an
  ``slo.violation`` event marks the moment the promise is broken —
  the instant the burn alerts exist to pre-empt.

Observational purity: the tracker records inside the emitter's stack
frame, creates no simulation events and consumes no simulated time, so
attaching it to any run — including the golden figure scenarios —
cannot change a single timestamp.  Error-budget and burn gauges are
quantized (``gauge_quantum``) so million-request runs do not accrete a
gauge sample per request.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.events import EventBus, TelemetryEvent, bus
from repro.telemetry.gauges import gauges

__all__ = ["SloSpec", "BurnRule", "SloTracker", "DEFAULT_BURN_RULES"]

#: The SRE-workbook multi-window pairs: a fast page on the 5m/1h pair
#: and a slow ticket on the 30m/6h pair.  Scenarios running compressed
#: timelines pass their own scaled-down rules.
DEFAULT_BURN_RULES: Tuple["BurnRule", ...] = ()


class BurnRule:
    """One multi-window burn-rate alerting rule.

    Fires when the error budget burns at ≥ *factor* times the
    sustainable rate over both windows.  ``burn = bad_fraction /
    (1 - target)``: burn 1.0 consumes exactly the budget, burn 14.4
    over an hour eats a 30-day budget's 2% in that hour.
    """

    __slots__ = ("short_window", "long_window", "factor", "severity")

    def __init__(self, short_window: float, long_window: float,
                 factor: float, severity: str = "page"):
        if short_window <= 0 or long_window <= short_window:
            raise ValueError("burn rule needs 0 < short_window < long_window")
        if factor <= 0:
            raise ValueError("burn factor must be positive")
        self.short_window = short_window
        self.long_window = long_window
        self.factor = factor
        self.severity = severity

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<BurnRule {self.severity} x{self.factor:g} "
                f"{self.short_window:g}s/{self.long_window:g}s>")


DEFAULT_BURN_RULES = (BurnRule(300.0, 3600.0, 14.4, "page"),
                      BurnRule(1800.0, 21600.0, 6.0, "ticket"))


class SloSpec:
    """Declarative objectives for one slice of traffic.

    *service* is an exact name, ``"*"`` for everything, or a UDDI-style
    trailing-``%`` prefix pattern; *principal* is an exact name or
    ``"*"``.  At least one objective (availability / latency) must be
    declared.
    """

    __slots__ = ("name", "service", "principal", "availability",
                 "latency_target", "latency_quantile", "compliance_window",
                 "min_samples")

    def __init__(self, name: str, service: str = "*", principal: str = "*",
                 availability: Optional[float] = None,
                 latency_target: Optional[float] = None,
                 latency_quantile: float = 0.95,
                 compliance_window: float = 21600.0,
                 min_samples: int = 20):
        if availability is None and latency_target is None:
            raise ValueError(f"SLO {name!r} declares no objective")
        for target in (availability,
                       latency_quantile if latency_target is not None
                       else None):
            if target is not None and not 0.0 < target < 1.0:
                raise ValueError(
                    f"SLO {name!r} target {target!r} outside (0, 1)")
        if latency_target is not None and latency_target <= 0:
            raise ValueError(f"SLO {name!r} latency target must be positive")
        if compliance_window <= 0:
            raise ValueError(f"SLO {name!r} compliance window must be "
                             f"positive")
        self.name = name
        self.service = service
        self.principal = principal
        self.availability = availability
        self.latency_target = latency_target
        self.latency_quantile = latency_quantile
        self.compliance_window = compliance_window
        #: Below this sample count, compliance is not judged (cold start).
        self.min_samples = min_samples

    def matches(self, service: Optional[str],
                principal: Optional[str]) -> bool:
        if self.service != "*":
            if service is None:
                return False
            if self.service.endswith("%"):
                if not service.startswith(self.service[:-1]):
                    return False
            elif service != self.service:
                return False
        if self.principal != "*" and principal != self.principal:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        objectives = []
        if self.availability is not None:
            objectives.append(f"avail>={self.availability:g}")
        if self.latency_target is not None:
            objectives.append(f"p{100 * self.latency_quantile:g}"
                              f"<={self.latency_target:g}s")
        return (f"<SloSpec {self.name!r} service={self.service!r} "
                f"{' '.join(objectives)}>")


class _WindowCounter:
    """Good/bad counts over one sliding window of the event stream."""

    __slots__ = ("window", "samples", "total", "bad")

    def __init__(self, window: float):
        self.window = window
        self.samples: Deque[Tuple[float, int]] = deque()
        self.total = 0
        self.bad = 0

    def record(self, ts: float, bad: int) -> None:
        self.samples.append((ts, bad))
        self.total += 1
        self.bad += bad

    def refresh(self, now: float) -> None:
        horizon = now - self.window
        samples = self.samples
        while samples and samples[0][0] <= horizon:
            _, bad = samples.popleft()
            self.total -= 1
            self.bad -= bad

    def bad_fraction(self) -> float:
        return self.bad / self.total if self.total else 0.0


class _Objective:
    """One objective's counters + alert/violation state machine."""

    __slots__ = ("kind", "target", "windows", "compliance", "alerting",
                 "violated")

    def __init__(self, kind: str, target: float, spec: SloSpec,
                 rules: Sequence[BurnRule]):
        self.kind = kind
        self.target = target
        #: window length -> counter (alert windows + compliance window).
        self.windows: Dict[float, _WindowCounter] = {}
        for rule in rules:
            for w in (rule.short_window, rule.long_window):
                self.windows.setdefault(w, _WindowCounter(w))
        self.compliance = self.windows.setdefault(
            spec.compliance_window, _WindowCounter(spec.compliance_window))
        #: rule index -> currently-alerting flag.
        self.alerting: List[bool] = [False] * len(rules)
        self.violated = False

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    def record(self, ts: float, bad: bool) -> None:
        flag = 1 if bad else 0
        for counter in self.windows.values():
            counter.record(ts, flag)

    def refresh(self, now: float) -> None:
        for counter in self.windows.values():
            counter.refresh(now)

    def burn(self, window: float) -> float:
        return self.windows[window].bad_fraction() / self.budget

    def budget_remaining(self) -> float:
        """Fraction of the compliance window's error budget left."""
        return 1.0 - self.compliance.bad_fraction() / self.budget


class SloTracker:
    """Sliding-window SLO compliance + burn-rate alerting off the bus.

    Subscribes to ``ws.request`` events (client side by default — the
    tenant-facing latency includes the wire) and feeds every matching
    spec's objectives.  Emits ``slo.burn`` / ``slo.burn_clear`` /
    ``slo.violation`` / ``slo.violation_clear`` events and maintains
    ``slo.budget`` / ``slo.burn_rate`` gauge families labelled by
    ``slo`` / ``objective`` (/ ``window``).
    """

    def __init__(self, sim, specs: Sequence[SloSpec],
                 rules: Sequence[BurnRule] = DEFAULT_BURN_RULES,
                 side: str = "client", gauge_quantum: float = 1e-3):
        self.sim = sim
        self.specs = list(specs)
        self.rules = list(rules)
        self.side = side
        self.gauge_quantum = gauge_quantum
        self.bus: EventBus = bus(sim)
        self._board = gauges(sim)
        self._objectives: Dict[Tuple[str, str], _Objective] = {}
        for spec in self.specs:
            if spec.availability is not None:
                self._objectives[(spec.name, "availability")] = _Objective(
                    "availability", spec.availability, spec, self.rules)
            if spec.latency_target is not None:
                self._objectives[(spec.name, "latency")] = _Objective(
                    "latency", spec.latency_quantile, spec, self.rules)
        #: Chronological (ts, event-kind, slo, objective, severity) log —
        #: the alert timeline scenarios build lead-time tables from.
        self.transitions: List[Tuple[float, str, str, str, str]] = []
        self.samples_recorded = 0
        self._unsubscribe = self.bus.subscribe(self._on_request,
                                               kinds=("ws.request",))

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop observing (idempotent)."""
        self._unsubscribe()

    # -- recording ----------------------------------------------------------

    def _on_request(self, event: TelemetryEvent) -> None:
        if event.get("side") != self.side:
            return
        service = event.get("service")
        principal = event.get("principal")
        latency = float(event.get("latency", 0.0))
        faulted = event.get("fault") is not None
        now = event.ts
        for spec in self.specs:
            if not spec.matches(service, principal):
                continue
            if spec.availability is not None:
                self._record(spec, "availability", now, faulted)
            if spec.latency_target is not None:
                self._record(spec, "latency", now,
                             faulted or latency > spec.latency_target)

    def _record(self, spec: SloSpec, kind: str, now: float,
                bad: bool) -> None:
        objective = self._objectives[(spec.name, kind)]
        objective.record(now, bad)
        self.samples_recorded += 1
        self._evaluate(spec, kind, objective, now)

    # -- evaluation ---------------------------------------------------------

    def evaluate(self) -> None:
        """Re-evaluate every objective at the current simulated time.

        Recording already evaluates on each sample; this exists so a
        scenario can refresh state after a quiet period (windows only
        move when something asks).
        """
        for spec in self.specs:
            for kind in ("availability", "latency"):
                objective = self._objectives.get((spec.name, kind))
                if objective is not None:
                    self._evaluate(spec, kind, objective, self.sim.now)

    def _evaluate(self, spec: SloSpec, kind: str, objective: _Objective,
                  now: float) -> None:
        objective.refresh(now)
        for i, rule in enumerate(self.rules):
            short_burn = objective.burn(rule.short_window)
            long_burn = objective.burn(rule.long_window)
            firing = (short_burn >= rule.factor and long_burn >= rule.factor)
            if firing != objective.alerting[i]:
                objective.alerting[i] = firing
                event_kind = "slo.burn" if firing else "slo.burn_clear"
                self.transitions.append(
                    (now, event_kind, spec.name, kind, rule.severity))
                self.bus.emit(
                    event_kind, layer="slo", slo=spec.name, objective=kind,
                    severity=rule.severity, factor=rule.factor,
                    short_window=rule.short_window,
                    long_window=rule.long_window,
                    short_burn=round(short_burn, 4),
                    long_burn=round(long_burn, 4),
                    budget_remaining=round(objective.budget_remaining(), 4))
            self._set_gauge(
                "slo.burn_rate",
                {"slo": spec.name, "objective": kind,
                 "window": f"{rule.long_window:g}"}, long_burn)
        compliance = objective.compliance
        if compliance.total >= spec.min_samples:
            good_fraction = 1.0 - compliance.bad_fraction()
            violated = good_fraction < objective.target
            if violated != objective.violated:
                objective.violated = violated
                event_kind = ("slo.violation" if violated
                              else "slo.violation_clear")
                self.transitions.append(
                    (now, event_kind, spec.name, kind, "hard"))
                self.bus.emit(
                    event_kind, layer="slo", slo=spec.name, objective=kind,
                    target=objective.target,
                    compliance=round(good_fraction, 6),
                    window=spec.compliance_window,
                    samples=compliance.total)
        self._set_gauge("slo.budget",
                        {"slo": spec.name, "objective": kind},
                        objective.budget_remaining())

    def _set_gauge(self, family: str, labels: Dict[str, str],
                   value: float) -> None:
        """Quantized gauge update (bounded series growth on long runs)."""
        quantum = self.gauge_quantum
        if quantum > 0:
            value = round(value / quantum) * quantum
        self._board.gauge(family, unit="ratio", labels=labels).set(value)

    # -- queries ------------------------------------------------------------

    def objective(self, slo: str, kind: str) -> _Objective:
        return self._objectives[(slo, kind)]

    def first_transition(self, kind: str,
                         slo: Optional[str] = None) -> Optional[float]:
        """Timestamp of the first *kind* transition (optionally per SLO)."""
        for ts, event_kind, name, _, _ in self.transitions:
            if event_kind == kind and (slo is None or name == slo):
                return ts
        return None

    def table(self) -> str:
        """An aligned text table of every objective's current state."""
        rows = [("slo", "objective", "target", "compliance", "budget",
                 "state")]
        for spec in self.specs:
            for kind in ("availability", "latency"):
                objective = self._objectives.get((spec.name, kind))
                if objective is None:
                    continue
                compliance = objective.compliance
                good = (1.0 - compliance.bad_fraction()
                        if compliance.total else 1.0)
                state = "VIOLATED" if objective.violated else (
                    "burning" if any(objective.alerting) else "ok")
                rows.append((spec.name, kind, f"{objective.target:.3f}",
                             f"{good:.4f}",
                             f"{objective.budget_remaining():6.1%}",
                             state))
        widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
        return "\n".join(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in rows)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<SloTracker specs={len(self.specs)} "
                f"samples={self.samples_recorded} "
                f"transitions={len(self.transitions)}>")
