"""Periodic host sampler reproducing the paper's monitoring instrument.

The paper plots, for the appliance host, at a 3-second interval:

* CPU utilization (percent),
* hard-disk read and write rates,
* network input and output rates.

:class:`HostSampler` runs as a simulation process.  Each interval it reads
the host's *exact* cumulative counters (the hardware layer integrates work
lazily, so no precision is lost between samples) and appends the
per-interval rate to one :class:`~repro.telemetry.series.TimeSeries` per
metric.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.hardware.host import Host
from repro.telemetry.series import TimeSeries
from repro.units import KB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["HostSampler"]

#: Metric names produced by the sampler.
METRICS = ("cpu_pct", "disk_read_kbps", "disk_write_kbps",
           "net_in_kbps", "net_out_kbps")


class HostSampler:
    """Samples one host's counters every *interval* simulated seconds.

    Parameters
    ----------
    host:
        The host to instrument.
    interval:
        Sampling period; the paper used 3 seconds.
    autostart:
        Start sampling immediately (default).  Pass ``False`` and call
        :meth:`start` to begin at a later simulated time.
    """

    def __init__(self, host: Host, interval: float = 3.0,
                 autostart: bool = True):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.host = host
        self.sim: "Simulator" = host.sim
        self.interval = interval
        self.series: Dict[str, TimeSeries] = {
            "cpu_pct": TimeSeries(f"{host.name}.cpu", unit="%"),
            "disk_read_kbps": TimeSeries(f"{host.name}.disk_read", unit="KB/s"),
            "disk_write_kbps": TimeSeries(f"{host.name}.disk_write", unit="KB/s"),
            "net_in_kbps": TimeSeries(f"{host.name}.net_in", unit="KB/s"),
            "net_out_kbps": TimeSeries(f"{host.name}.net_out", unit="KB/s"),
        }
        self._running = False
        self._process = None
        if autostart:
            self.start()

    # -- control -----------------------------------------------------------

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self._process = self.sim.process(self._run(), name=f"sampler:{self.host.name}")

    def stop(self) -> None:
        """Stop after the current interval completes."""
        self._running = False

    # -- access ------------------------------------------------------------

    def __getitem__(self, metric: str) -> TimeSeries:
        return self.series[metric]

    @property
    def cpu(self) -> TimeSeries:
        return self.series["cpu_pct"]

    @property
    def disk_read(self) -> TimeSeries:
        return self.series["disk_read_kbps"]

    @property
    def disk_write(self) -> TimeSeries:
        return self.series["disk_write_kbps"]

    @property
    def net_in(self) -> TimeSeries:
        return self.series["net_in_kbps"]

    @property
    def net_out(self) -> TimeSeries:
        return self.series["net_out_kbps"]

    # -- internals -----------------------------------------------------------

    def _snapshot(self) -> Dict[str, float]:
        host = self.host
        return {
            "busy": host.cpu.busy_core_seconds(),
            "disk_read": host.disk.bytes_read(),
            "disk_write": host.disk.bytes_written(),
            "net_in": host.net_bytes_in(),
            "net_out": host.net_bytes_out(),
        }

    def _run(self):
        prev = self._snapshot()
        prev_t = self.sim.now
        while self._running:
            yield self.sim.timeout(self.interval)
            now = self.sim.now
            cur = self._snapshot()
            dt = now - prev_t
            cores = self.host.cpu.cores
            self.series["cpu_pct"].append(
                now, 100.0 * (cur["busy"] - prev["busy"]) / (cores * dt))
            self.series["disk_read_kbps"].append(
                now, (cur["disk_read"] - prev["disk_read"]) / dt / KB(1))
            self.series["disk_write_kbps"].append(
                now, (cur["disk_write"] - prev["disk_write"]) / dt / KB(1))
            self.series["net_in_kbps"].append(
                now, (cur["net_in"] - prev["net_in"]) / dt / KB(1))
            self.series["net_out_kbps"].append(
                now, (cur["net_out"] - prev["net_out"]) / dt / KB(1))
            prev, prev_t = cur, now
