"""Fleet rollups: the control tower's view of a replicated appliance.

A sharded deployment (DESIGN.md §11) turns one appliance timeline into
N interleaved ones, and the existing per-operation metrics registries
are per-container — nothing answers "which replica is melting?".  This
module adds the missing aggregation axis on top of the event bus:

* :class:`FleetRollup` — per-**replica**, per-**site** and
  per-**principal** rollups (call/fault counts plus mergeable
  :class:`~repro.telemetry.metrics.LatencyHistogram` s), fed by the
  server-side ``ws.request`` stream's ``origin`` field and the grid
  layer's ``gram.submit`` events, with live queue/inflight snapshots
  read from the router;
* :class:`HotShardDetector` — scores each replica's observed share of
  recent load against its consistent-hash **ownership** share of the
  ring.  A replica serving 3× the keyspace arc it owns is a *hot
  shard*: the skew is in the key popularity, not the placement, and
  rebalancing vnodes will not fix it.  Transitions emit
  ``fleet.imbalance`` / ``fleet.balanced`` events naming the culprit;
* :class:`ControlTower` — the one-handle bundle (SLO tracker + rollup
  + detector + optional kernel profiler) a scenario attaches to a
  fabric and reads a text dashboard from.

Everything here is a pure observer: bus callbacks record in the
emitter's frame, detector checks are amortized every ``check_every``
samples, no simulation events are created — goldens stay byte-identical
with the whole tower attached.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.telemetry.events import EventBus, TelemetryEvent, bus
from repro.telemetry.metrics import LatencyHistogram
from repro.telemetry.slo import BurnRule, SloSpec, SloTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator
    from repro.telemetry.profiler import KernelProfiler
    from repro.ws.router import RequestRouter

__all__ = ["ReplicaStats", "FleetRollup", "HotShardDetector", "ControlTower"]


class ReplicaStats:
    """One rollup cell: calls, faults and latency for one aggregation key."""

    __slots__ = ("key", "calls", "faults", "latency", "services")

    def __init__(self, key: str):
        self.key = key
        self.calls = 0
        self.faults = 0
        self.latency = LatencyHistogram()
        #: service name -> calls served (popularity per replica).
        self.services: Dict[str, int] = {}

    def record(self, service: Optional[str], latency: float,
               faulted: bool) -> None:
        self.calls += 1
        if faulted:
            self.faults += 1
        self.latency.observe(latency)
        if service:
            self.services[service] = self.services.get(service, 0) + 1

    @property
    def fault_rate(self) -> float:
        return self.faults / self.calls if self.calls else 0.0

    def top_service(self) -> Optional[str]:
        if not self.services:
            return None
        return min(self.services, key=lambda s: (-self.services[s], s))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<ReplicaStats {self.key!r} calls={self.calls} "
                f"faults={self.faults}>")


class FleetRollup:
    """Per-replica / per-site / per-principal aggregation off the bus.

    Replica attribution relies on the ``origin`` field the server-side
    metrics interceptor stamps on ``ws.request`` events (the serving
    host's name); site counts come from ``gram.submit``.  Histograms
    are plain :class:`LatencyHistogram` s, so cross-replica views are
    one ``merge`` away.
    """

    def __init__(self, sim: "Simulator",
                 router: Optional["RequestRouter"] = None):
        self.sim = sim
        self.router = router
        self.bus: EventBus = bus(sim)
        self.replicas: Dict[str, ReplicaStats] = {}
        self.principals: Dict[str, ReplicaStats] = {}
        self.sites: Dict[str, int] = {}
        self.samples = 0
        self._unsubscribe = self.bus.subscribe(
            self._on_event, kinds=("ws.request", "gram.submit"))

    def close(self) -> None:
        self._unsubscribe()

    # -- recording ----------------------------------------------------------

    def _on_event(self, event: TelemetryEvent) -> None:
        if event.kind == "gram.submit":
            site = event.get("site")
            if site:
                self.sites[site] = self.sites.get(site, 0) + 1
            return
        if event.get("side") != "server":
            return
        origin = event.get("origin")
        if origin is None:
            return
        latency = float(event.get("latency", 0.0))
        faulted = event.get("fault") is not None
        service = event.get("service")
        self.samples += 1
        cell = self.replicas.get(origin)
        if cell is None:
            cell = self.replicas[origin] = ReplicaStats(origin)
        cell.record(service, latency, faulted)
        principal = event.get("principal")
        if principal:
            pcell = self.principals.get(principal)
            if pcell is None:
                pcell = self.principals[principal] = ReplicaStats(principal)
            pcell.record(service, latency, faulted)

    # -- aggregate views ----------------------------------------------------

    def load_shares(self) -> Dict[str, float]:
        """replica -> fraction of all recorded server-side calls."""
        total = sum(cell.calls for cell in self.replicas.values())
        if not total:
            return {}
        return {name: cell.calls / total
                for name, cell in sorted(self.replicas.items())}

    def merged_latency(self) -> LatencyHistogram:
        """All replicas' histograms folded into one fleet-wide view."""
        out = LatencyHistogram()
        for name in sorted(self.replicas):
            out.merge(self.replicas[name].latency)
        return out

    def inflight_snapshot(self) -> Dict[str, int]:
        """replica -> requests in flight right now (via the router)."""
        if self.router is None:
            return {}
        return {name: self.router.inflight(name)
                for name in self.router.replicas()}

    def table(self, ownership: Optional[Dict[str, float]] = None,
              budgets: Optional[Dict[str, str]] = None) -> str:
        """The per-replica dashboard table.

        *ownership* (replica -> ring arc fraction) adds owned-vs-served
        columns; *budgets* (replica -> text) appends a free-form column
        (the scenario passes SLO budget strings).
        """
        shares = self.load_shares()
        inflight = self.inflight_snapshot()
        header = ["replica", "calls", "share", "inflight", "p95_s",
                  "faults", "top_service"]
        if ownership is not None:
            header.insert(3, "owned")
        if budgets is not None:
            header.append("slo_budget")
        rows = [tuple(header)]
        for name in sorted(self.replicas):
            cell = self.replicas[name]
            row = [name, str(cell.calls), f"{shares.get(name, 0.0):.1%}",
                   str(inflight.get(name, 0)),
                   f"{cell.latency.quantile(0.95):.3f}",
                   str(cell.faults), cell.top_service() or "-"]
            if ownership is not None:
                row.insert(3, f"{ownership.get(name, 0.0):.1%}")
            if budgets is not None:
                row.append(budgets.get(name, "-"))
            rows.append(tuple(row))
        widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
        return "\n".join(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in rows)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<FleetRollup replicas={len(self.replicas)} "
                f"samples={self.samples}>")


class HotShardDetector:
    """Key-popularity skew: served share vs owned share of the ring.

    Consistent hashing balances *keyspace*; it cannot balance *key
    popularity* — one hot service still lands all its requests on its
    single hash owner.  The detector keeps a sliding window of recent
    server-side requests and, every ``check_every`` samples, scores
    each replica::

        score(r) = served_share(r) / ring_ownership(r)

    A score of 1.0 is perfect proportionality.  When the hottest
    replica's score crosses ``threshold`` (with at least
    ``min_samples`` in the window), a ``fleet.imbalance`` event names
    it and its dominant service; dropping back below clears with
    ``fleet.balanced``.  Scoring against ownership (not ``1/N``)
    distinguishes *popularity skew* — fix by splitting/caching the hot
    service — from mere vnode placement unevenness.
    """

    def __init__(self, sim: "Simulator", router: "RequestRouter",
                 window: float = 600.0, check_every: int = 32,
                 threshold: float = 2.0, min_samples: int = 50):
        if threshold <= 1.0:
            raise ValueError("hot-shard threshold must exceed 1.0")
        self.sim = sim
        self.router = router
        self.window = window
        self.check_every = check_every
        self.threshold = threshold
        self.min_samples = min_samples
        self.bus: EventBus = bus(sim)
        #: (ts, origin, service) samples inside the sliding window.
        self._samples: Deque[Tuple[float, str, str]] = deque()
        self._since_check = 0
        self.checks = 0
        #: Currently-flagged hot replica (None when balanced).
        self.hot: Optional[str] = None
        #: (ts, "hot"/"clear", replica, score) transition log.
        self.transitions: List[Tuple[float, str, str, float]] = []
        self._unsubscribe = self.bus.subscribe(self._on_request,
                                               kinds=("ws.request",))

    def close(self) -> None:
        self._unsubscribe()

    # -- recording ----------------------------------------------------------

    def _on_request(self, event: TelemetryEvent) -> None:
        if event.get("side") != "server":
            return
        origin = event.get("origin")
        if origin is None:
            return
        self._samples.append((event.ts, origin, event.get("service") or ""))
        self._since_check += 1
        if self._since_check >= self.check_every:
            self._since_check = 0
            self.check()

    # -- scoring ------------------------------------------------------------

    def _refresh(self, now: float) -> None:
        horizon = now - self.window
        samples = self._samples
        while samples and samples[0][0] <= horizon:
            samples.popleft()

    def scores(self) -> Dict[str, float]:
        """replica -> served-share / owned-share over the current window."""
        self._refresh(self.sim.now)
        total = len(self._samples)
        if not total:
            return {}
        served: Dict[str, int] = {}
        for _, origin, _service in self._samples:
            served[origin] = served.get(origin, 0) + 1
        ownership = self.router.ring.ownership()
        out: Dict[str, float] = {}
        for name, arc in ownership.items():
            share = served.get(name, 0) / total
            out[name] = share / arc if arc > 0 else 0.0
        return out

    def check(self) -> Optional[str]:
        """Score now; emit on hot/clear transitions.  Returns the hot one."""
        self.checks += 1
        self._refresh(self.sim.now)
        if len(self._samples) < self.min_samples:
            return self.hot
        scores = self.scores()
        if not scores:
            return self.hot
        hottest = min(scores, key=lambda n: (-scores[n], n))
        score = scores[hottest]
        if score >= self.threshold and hottest != self.hot:
            self.hot = hottest
            service = self._dominant_service(hottest)
            self.transitions.append((self.sim.now, "hot", hottest, score))
            self.bus.emit("fleet.imbalance", layer="fleet",
                          replica=hottest, score=round(score, 3),
                          threshold=self.threshold,
                          owned=round(self.router.ring.ownership()
                                      .get(hottest, 0.0), 4),
                          window_samples=len(self._samples),
                          service=service)
        elif self.hot is not None and scores.get(self.hot, 0.0) < self.threshold:
            cleared, self.hot = self.hot, None
            self.transitions.append(
                (self.sim.now, "clear", cleared, scores.get(cleared, 0.0)))
            self.bus.emit("fleet.balanced", layer="fleet", replica=cleared,
                          score=round(scores.get(cleared, 0.0), 3))
        return self.hot

    def _dominant_service(self, replica: str) -> str:
        counts: Dict[str, int] = {}
        for _, origin, service in self._samples:
            if origin == replica and service:
                counts[service] = counts.get(service, 0) + 1
        if not counts:
            return ""
        return min(counts, key=lambda s: (-counts[s], s))

    def first_detection(self) -> Optional[Tuple[float, str]]:
        """(ts, replica) of the first hot-shard flag, or ``None``."""
        for ts, kind, replica, _score in self.transitions:
            if kind == "hot":
                return ts, replica
        return None

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<HotShardDetector hot={self.hot!r} checks={self.checks} "
                f"window={len(self._samples)}>")


class ControlTower:
    """SLO tracker + fleet rollup + hot-shard detector, one handle.

    The scenario-facing bundle: construct with the fabric's router and
    the run's SLO specs, optionally attach the kernel profiler, read
    :meth:`dashboard` at the end.  ``close()`` detaches every observer
    (idempotent), which the attach-but-observe golden guard exercises.
    """

    def __init__(self, sim: "Simulator",
                 specs: Sequence[SloSpec] = (),
                 rules: Optional[Sequence[BurnRule]] = None,
                 router: Optional["RequestRouter"] = None,
                 detector_window: float = 600.0,
                 detector_threshold: float = 2.0,
                 detector_min_samples: int = 50,
                 detector_check_every: int = 32,
                 profiler: Optional["KernelProfiler"] = None):
        self.sim = sim
        kwargs: Dict[str, Any] = {}
        if rules is not None:
            kwargs["rules"] = tuple(rules)
        self.slo: Optional[SloTracker] = (
            SloTracker(sim, specs, **kwargs) if specs else None)
        self.fleet = FleetRollup(sim, router=router)
        self.detector: Optional[HotShardDetector] = None
        if router is not None:
            self.detector = HotShardDetector(
                sim, router, window=detector_window,
                threshold=detector_threshold,
                min_samples=detector_min_samples,
                check_every=detector_check_every)
        self.profiler = profiler
        if profiler is not None:
            profiler.attach()

    def close(self) -> None:
        if self.slo is not None:
            self.slo.close()
        self.fleet.close()
        if self.detector is not None:
            self.detector.close()
        if self.profiler is not None:
            self.profiler.detach()

    def dashboard(self) -> str:
        """The control-tower text dashboard (per-replica + SLO tables)."""
        sections: List[str] = []
        ownership = None
        if self.detector is not None:
            ownership = self.detector.router.ring.ownership()
        sections.append("== fleet ==")
        sections.append(self.fleet.table(ownership=ownership))
        if self.detector is not None:
            hot = self.detector.hot
            scores = self.detector.scores()
            if scores:
                worst = min(scores, key=lambda n: (-scores[n], n))
                sections.append(
                    f"hot shard: "
                    + (f"{hot} (score {scores.get(hot, 0.0):.2f})"
                       if hot else
                       f"none (max {worst} at {scores[worst]:.2f})"))
        if self.slo is not None:
            sections.append("")
            sections.append("== slo ==")
            sections.append(self.slo.table())
        if self.profiler is not None:
            sections.append("")
            sections.append("== kernel ==")
            sections.append(self.profiler.report())
        return "\n".join(sections)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        parts = [f"fleet={len(self.fleet.replicas)}r"]
        if self.slo is not None:
            parts.append(f"slo={len(self.slo.specs)}")
        if self.detector is not None:
            parts.append(f"hot={self.detector.hot!r}")
        return f"<ControlTower {' '.join(parts)}>"
