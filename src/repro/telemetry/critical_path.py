"""Critical-path analysis: where did a request's wall-clock go?

The paper's §VIII.D ranks the stack's bottlenecks qualitatively (the
thin client uplink, then the LRM queue, then the middleware overheads).
This module makes that ranking quantitative for any traced request: it
walks the request's span tree and attributes every simulated second of
the end-to-end latency to one ``layer/category`` bucket:

* each span's **self-time** (its duration minus the union of its
  children's intervals) lands in a bucket chosen from the span name —
  ``client:*`` self-time is SOAP transport (``ws/transfer``),
  ``gridftp:*`` is payload staging (``grid/transfer``),
  ``service:*`` is middleware work (``core/compute``), and so on;
* the **polling span** (``service:polling``) is the interesting one:
  its self-time is the watchdog's sleep between tentative polls, which
  *overlaps* the grid-side job lifecycle.  Using the scheduler's
  ``sched.submit`` / ``sched.start`` / ``sched.finish`` bus events for
  the job in the span's meta, the idle time is split into
  ``grid/queueing`` (job waiting in the LRM queue), ``grid/compute``
  (job actually running) and ``core/queueing`` (detection lag: the
  interval between job completion and the poll that notices).

Because self-times partition the root interval (spans nest; children
within one request are sequential), the bucket totals reconcile with
the end-to-end duration exactly — :meth:`Attribution.reconciles`
asserts it to a relative tolerance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.context import RequestContext, TraceSpan
from repro.telemetry.events import EventBus
from repro.telemetry.gauges import GaugeBoard

__all__ = ["Attribution", "analyze_request"]

Interval = Tuple[float, float]


def _merge(intervals: List[Interval]) -> List[Interval]:
    """Union of intervals as a sorted, disjoint list."""
    out: List[Interval] = []
    for a, b in sorted(intervals):
        if out and a <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], b))
        else:
            out.append((a, b))
    return out


def _complement(window: Interval, covered: List[Interval]) -> List[Interval]:
    """Sub-intervals of *window* not covered by *covered* (pre-merged)."""
    gaps: List[Interval] = []
    cursor = window[0]
    for a, b in covered:
        a, b = max(a, window[0]), min(b, window[1])
        if b <= cursor:
            continue
        if a > cursor:
            gaps.append((cursor, a))
        cursor = max(cursor, b)
    if cursor < window[1]:
        gaps.append((cursor, window[1]))
    return gaps


def _overlap(a: Interval, b: Interval) -> float:
    return max(0.0, min(a[1], b[1]) - max(a[0], b[0]))


def _classify(name: str) -> str:
    """Span name -> ``layer/category`` bucket for its self-time."""
    prefix = name.split(":", 1)[0]
    if prefix == "client":
        return "ws/transfer"       # SOAP envelopes on the wire + stub time
    if prefix in ("server", "request"):
        return "ws/compute"        # parse, dispatch, interceptor chain
    if prefix == "agent":
        return ("agent/transfer" if "outputReady" in name
                else "agent/compute")
    if prefix == "router":
        # hop self-time is the routed envelopes on the wire; route
        # self-time is replica-side dispatch the route span brackets.
        return "ws/transfer" if name == "router:hop" else "ws/compute"
    if prefix == "gridftp":
        return "grid/transfer"     # payload staging over the uplink
    if prefix == "gram":
        return "grid/transfer"     # gatekeeper control exchanges
    if prefix == "notify":
        return "grid/transfer"     # push-path callback traffic
    if prefix == "db":
        return "db/storage"        # DB-tier fetches, lock waits, replicas
    if prefix in ("service", "onserve", "uddi", "management", "portal"):
        return "core/compute"      # middleware work on the appliance
    return "other/compute"


class Attribution:
    """Per-bucket latency attribution of one request."""

    def __init__(self, request_id: str, total: float):
        self.request_id = request_id
        #: End-to-end latency being explained (simulated seconds).
        self.total = total
        #: ``layer/category`` -> attributed seconds.
        self.buckets: Dict[str, float] = {}
        #: Gauge name -> peak level over the run (context for the table).
        self.queue_peaks: Dict[str, float] = {}
        self.span_count = 0

    def add(self, bucket: str, seconds: float) -> None:
        if seconds <= 0.0:
            return
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + seconds

    @property
    def attributed(self) -> float:
        return sum(self.buckets.values())

    @property
    def unattributed(self) -> float:
        return self.total - self.attributed

    def ranked(self) -> List[Tuple[str, float]]:
        """Buckets largest-first — the quantitative bottleneck ranking."""
        return sorted(self.buckets.items(), key=lambda kv: (-kv[1], kv[0]))

    def by_layer(self) -> Dict[str, float]:
        """Seconds per layer (bucket prefixes aggregated)."""
        out: Dict[str, float] = {}
        for bucket, secs in self.buckets.items():
            layer = bucket.split("/", 1)[0]
            out[layer] = out.get(layer, 0.0) + secs
        return out

    def reconciles(self, tol: float = 0.01) -> bool:
        """Do the buckets sum to the end-to-end latency (within *tol*)?"""
        if self.total <= 0.0:
            return not self.buckets
        return abs(self.unattributed) <= tol * self.total

    def table(self) -> str:
        """An aligned text table: bucket, seconds, share of total."""
        rows = [("layer/category", "seconds", "share")]
        for bucket, secs in self.ranked():
            share = secs / self.total * 100.0 if self.total else 0.0
            rows.append((bucket, f"{secs:.3f}", f"{share:5.1f}%"))
        rows.append(("total", f"{self.total:.3f}", "100.0%"))
        widths = [max(len(r[c]) for r in rows) for c in range(3)]
        lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths))
                 .rstrip() for row in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        top = self.ranked()[0][0] if self.buckets else "-"
        return (f"<Attribution {self.request_id} total={self.total:.3f}s "
                f"top={top}>")


def _span_window(node: TraceSpan, fallback_end: float) -> Interval:
    end = node.end if node.end is not None else fallback_end
    return (node.start, max(end, node.start))


def _split_polling_idle(attribution: Attribution, idle: List[Interval],
                        job_id: Optional[str],
                        bus: Optional[EventBus]) -> None:
    """Split polling-span idle time into queueing/compute/detection.

    The push path (a ``notify:await`` span) gets the same treatment,
    with one refinement: idle time between the job finishing and its
    terminal notification *arriving* is the queue's propagation delay
    in flight — ``notify/propagation`` — not middleware-side waiting.
    """
    queue_iv: Optional[Interval] = None
    run_iv: Optional[Interval] = None
    push_iv: Optional[Interval] = None
    if bus is not None and job_id:
        submit = bus.first("sched.submit", job_id=job_id)
        start = bus.first("sched.start", job_id=job_id)
        finish = bus.first("sched.finish", job_id=job_id)
        if submit is not None and start is not None:
            queue_iv = (submit.ts, start.ts)
        if start is not None:
            run_iv = (start.ts, finish.ts if finish is not None
                      else float("inf"))
        if finish is not None:
            # The first delivery at or after the finish is the terminal
            # one (earlier deliveries carried pre-terminal states).
            arrivals = [ev.ts for ev in bus.events("notify.deliver")
                        if ev.fields.get("job_id") == job_id
                        and ev.ts >= finish.ts]
            if arrivals:
                push_iv = (finish.ts, min(arrivals))
    for gap in idle:
        remaining = gap[1] - gap[0]
        if queue_iv is not None:
            waited = _overlap(gap, queue_iv)
            attribution.add("grid/queueing", waited)
            remaining -= waited
        if run_iv is not None:
            ran = _overlap(gap, run_iv)
            attribution.add("grid/compute", ran)
            remaining -= ran
        if push_iv is not None:
            in_flight = _overlap(gap, push_iv)
            attribution.add("notify/propagation", in_flight)
            remaining -= in_flight
        # Whatever idle time was neither queueing nor running (nor a
        # notification in flight) is the watchdog's detection lag
        # (sleeping past job completion, or pre-submission setup) —
        # middleware-side waiting.
        attribution.add("core/queueing", remaining)


def analyze_request(ctx: RequestContext,
                    bus: Optional[EventBus] = None,
                    board: Optional[GaugeBoard] = None) -> Attribution:
    """Attribute *ctx*'s end-to-end latency to layer/category buckets.

    *bus* (the run's event bus) enables the grid-side split of polling
    idle time; *board* adds queue peaks to the result for context.
    Neither is required — without them the polling idle time lands in
    ``core/queueing`` undivided.
    """
    spans = ctx.spans()
    closed_ends = [s.end for s in spans if s.end is not None]
    root_end = max(closed_ends) if closed_ends else ctx.root.start
    root_window = (ctx.root.start, max(root_end, ctx.root.start))

    attribution = Attribution(ctx.request_id,
                              root_window[1] - root_window[0])
    attribution.span_count = len(spans)
    if board is not None:
        attribution.queue_peaks = board.peaks()

    for _, node in ctx.root.walk():
        window = (root_window if node is ctx.root
                  else _span_window(node, root_window[1]))
        covered = _merge([_span_window(child, root_window[1])
                          for child in node.children])
        self_intervals = _complement(window, covered)
        if node.name in ("service:polling", "notify:await"):
            _split_polling_idle(attribution, self_intervals,
                                node.meta.get("job"), bus)
        else:
            bucket = _classify(node.name)
            attribution.add(
                bucket, sum(b - a for a, b in self_intervals))
    return attribution
