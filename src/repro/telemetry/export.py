"""Exporters: the observability plane in industry-standard formats.

Two wire formats cover the two halves of the plane:

* :func:`prometheus_text` renders metrics registries, gauge boards and
  event-bus counters in the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``_bucket`` series with ``le``
  labels, ``_count``/``_sum`` per histogram), so a run's numbers can be
  diffed or scraped with stock tooling.
* :func:`chrome_trace` serializes one or more request trace trees as
  Chrome ``trace_event`` JSON (``ph="X"`` complete events, microsecond
  ``ts``/``dur``), loadable in ``chrome://tracing`` / Perfetto for a
  visual per-request waterfall.

Both are pure functions over already-recorded state — exporting cannot
perturb a run any more than recording could.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence

from repro.core.context import RequestContext
from repro.telemetry.events import EventBus
from repro.telemetry.gauges import GaugeBoard
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["prometheus_text", "parse_prometheus_text", "chrome_trace"]


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric name from a dotted internal one."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _escape_label(value: Any) -> str:
    """Prometheus label-value escaping (exposition format).

    Backslash, double quote and newline are the three characters the
    format requires escaping; anything else passes through.  Without
    this, a service or operation name containing any of them renders
    unparseable exposition text.
    """
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value: float) -> str:
    """Prometheus sample value: integers without the trailing ``.0``."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(metrics: Optional[MetricsRegistry] = None,
                    board: Optional[GaugeBoard] = None,
                    bus: Optional[EventBus] = None) -> str:
    """Render the plane as Prometheus text exposition format.

    * Each :class:`~repro.telemetry.metrics.OperationMetrics` becomes a
      ``repro_request_latency_seconds`` histogram (cumulative buckets)
      plus a ``repro_request_faults_total`` counter, labelled by
      ``service`` and ``operation``.
    * Each gauge becomes ``repro_<name>`` with its current level.
    * Each event kind becomes a ``repro_events_total`` counter sample
      labelled by ``kind`` (exact totals, eviction-proof).
    """
    lines: List[str] = []

    if metrics is not None and metrics.all():
        hist = "repro_request_latency_seconds"
        lines.append(f"# HELP {hist} SOAP request latency by operation.")
        lines.append(f"# TYPE {hist} histogram")
        for m in metrics.all():
            labels = (f'service="{_escape_label(m.service)}",'
                      f'operation="{_escape_label(m.operation)}"')
            h = m.latency
            cumulative = 0
            for bound, count in zip(h.bounds, h.counts):
                cumulative += count
                lines.append(f'{hist}_bucket{{{labels},le="{_fmt(bound)}"}} '
                             f"{cumulative}")
            lines.append(f'{hist}_bucket{{{labels},le="+Inf"}} {h.count}')
            lines.append(f"{hist}_count{{{labels}}} {h.count}")
            lines.append(f"{hist}_sum{{{labels}}} {_fmt(h.total)}")
        faults = "repro_request_faults_total"
        lines.append(f"# HELP {faults} SOAP faults by operation.")
        lines.append(f"# TYPE {faults} counter")
        for m in metrics.all():
            labels = (f'service="{_escape_label(m.service)}",'
                      f'operation="{_escape_label(m.operation)}"')
            lines.append(f"{faults}{{{labels}}} {m.faults}")

    if board is not None:
        # Group children by family: one HELP/TYPE header per family,
        # one (possibly labelled) sample per child — the shape a stock
        # Prometheus scraper expects for labelled series.
        families: Dict[str, List[Any]] = {}
        for key in board.names():
            gauge = board.get(key)
            families.setdefault(gauge.family, []).append(gauge)
        for family in sorted(families):
            children = families[family]
            metric = "repro_" + _sanitize(family)
            unit = (f" ({children[0].series.unit})"
                    if children[0].series.unit else "")
            lines.append(f"# HELP {metric} Gauge {family}{unit}.")
            lines.append(f"# TYPE {metric} gauge")
            for gauge in children:
                if gauge.labels:
                    body = ",".join(
                        f'{_sanitize(k)}="{_escape_label(v)}"'
                        for k, v in sorted(gauge.labels.items()))
                    lines.append(f"{metric}{{{body}}} {_fmt(gauge.current)}")
                else:
                    lines.append(f"{metric} {_fmt(gauge.current)}")

    if bus is not None and bus.counts():
        events = "repro_events_total"
        lines.append(f"# HELP {events} Telemetry events by kind.")
        lines.append(f"# TYPE {events} counter")
        for kind in sorted(bus.counts()):
            lines.append(f'{events}{{kind="{_escape_label(kind)}"}} '
                         f"{bus.counts()[kind]}")

    return "\n".join(lines) + ("\n" if lines else "")


_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


def _scan_labels(body: str, lineno: int, line: str) -> None:
    """Validate a ``{...}`` label body per the exposition format.

    Label values must be double-quoted with ``\\``, ``\"`` and ``\\n``
    as the only legal escapes; an unescaped quote or backslash inside a
    value, a bad escape, or a missing closing quote all raise.  This is
    the teeth behind :func:`_escape_label` — text rendered without
    escaping no longer slips through the parser.
    """

    def fail(why: str) -> ValueError:
        return ValueError(f"line {lineno}: {why}: {line!r}")

    pos = 0
    while pos < len(body):
        match = _LABEL_NAME.match(body, pos)
        if match is None:
            raise fail("bad label name")
        pos = match.end()
        if pos >= len(body) or body[pos] != "=":
            raise fail("label missing '='")
        pos += 1
        if pos >= len(body) or body[pos] != '"':
            raise fail("label value not quoted")
        pos += 1
        closed = False
        while pos < len(body):
            ch = body[pos]
            if ch == "\\":
                if pos + 1 >= len(body) or body[pos + 1] not in ('\\', '"', "n"):
                    raise fail("bad escape in label value")
                pos += 2
                continue
            if ch == '"':
                closed = True
                pos += 1
                break
            pos += 1
        if not closed:
            raise fail("unterminated label value")
        if pos < len(body):
            if body[pos] != ",":
                raise fail("unescaped quote in label value")
            pos += 1
            if pos >= len(body):
                raise fail("trailing comma in labels")


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{sample-name{labels}: value}``.

    A deliberately strict reader used by tests and the CI smoke step:
    it raises ``ValueError`` on any line that is neither a comment nor
    a well-formed sample — including label values with unescaped
    quotes or backslashes — so "does the exporter output parse?" is a
    one-call check.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            raise ValueError(f"line {lineno}: not a sample: {line!r}")
        name, value = parts
        match = _METRIC_NAME.match(name)
        if match is None:
            raise ValueError(f"line {lineno}: bad sample name: {line!r}")
        rest = name[match.end():]
        if rest:
            if not (rest.startswith("{") and rest.endswith("}")):
                raise ValueError(f"line {lineno}: unbalanced labels: {line!r}")
            _scan_labels(rest[1:-1], lineno, line)
        try:
            samples[name] = float("inf") if value == "+Inf" else float(value)
        except ValueError:
            raise ValueError(f"line {lineno}: bad value: {line!r}") from None
    return samples


def chrome_trace(contexts: Sequence[RequestContext],
                 time_scale: float = 1e6) -> str:
    """Serialize request traces as Chrome ``trace_event`` JSON.

    Each request becomes one thread (``tid``) in a single process; each
    closed span becomes a ``ph="X"`` complete event with microsecond
    ``ts``/``dur`` (sim seconds x *time_scale*) and its meta as
    ``args``.  Open spans are skipped — a trace viewer cannot render
    events of unknown duration.

    Fleet attribution rides on every event: ``args.principal`` is the
    request's principal, and ``args.replica`` is inherited from the
    nearest ancestor span that recorded one (the ``router:hop`` /
    ``router:route`` spans), so replica-side spans of a routed request
    carry the replica that served them without each layer knowing about
    sharding.
    """
    events: List[Dict[str, Any]] = []
    for tid, ctx in enumerate(contexts, 1):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": f"{ctx.request_id} ({ctx.principal})"},
        })
        # replica inherited along the DFS path, indexed by depth.
        inherited: List[Optional[str]] = []
        for depth, node in ctx.root.walk():
            del inherited[depth:]
            replica = node.meta.get("replica") or (
                inherited[depth - 1] if depth else None)
            inherited.append(replica)
            if not node.closed:
                continue
            args: Dict[str, Any] = {k: v for k, v in sorted(node.meta.items())}
            args["principal"] = ctx.principal
            if replica is not None:
                args["replica"] = replica
            events.append({
                "name": node.name,
                "cat": node.name.split(":", 1)[0],
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": node.start * time_scale,
                "dur": node.duration * time_scale,
                "args": args,
            })
    return json.dumps({"traceEvents": events,
                       "displayTimeUnit": "ms"}, indent=1)
