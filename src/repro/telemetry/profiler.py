"""The sim-kernel profiler: where does the wall clock actually go?

ROADMAP item 4(b): before the repo can claim "N× scale at M events per
second", it needs a meter.  The :class:`KernelProfiler` hooks the three
hot paths that dominate a run's wall time —

* :meth:`Simulator.step`'s callback dispatch (the simulation itself),
* :meth:`EventBus.emit` (structured telemetry events), and
* :meth:`Gauge.set` (level recording)

— and splits every wall-clock second into **simulation work**
(attributed per process / handler name) versus **telemetry overhead**
(bus + gauges), so ``benchmarks/bench_kernel.py`` can gate both the
kernel's events-per-second throughput and the observability tax.

Two invariants the hooks are built around:

* **Zero perturbation.**  The profiler measures *wall* time only; it
  never touches the simulated clock, never creates simulation events,
  and the goldens stay byte-identical with it attached (the attach
  test pins this).
* **Zero cost when detached.**  Each hot path pays exactly one ``is
  None`` check when no profiler is attached — the hooks live behind
  ``sim._profiler`` / ``bus.profiler`` / ``gauge.profiler`` attributes
  that default to ``None``.

Attribution buckets normalise digit runs in process names
(``worker17`` → ``worker#``) so a thousand workers fold into one row.
"""

from __future__ import annotations

import re
import time
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.events import Event
    from repro.simkernel.kernel import Simulator

__all__ = ["KernelProfiler", "profile"]

_DIGITS = re.compile(r"\d+")


def _bucket(callback: Callable) -> str:
    """The attribution bucket of one event callback.

    Bound methods of named objects (every :class:`Process` resume) are
    charged to the owner's name with digit runs collapsed; bare
    functions fall back to their qualified name.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", "") or type(owner).__name__
    else:
        name = getattr(callback, "__qualname__",
                       getattr(callback, "__name__", "<callback>"))
    return _DIGITS.sub("#", name)


class KernelProfiler:
    """Wall-clock accounting for one simulator run.

    Usage::

        prof = KernelProfiler(sim).attach()
        sim.run(until=3600)
        prof.detach()
        print(prof.report())

    or as a context manager via :func:`profile`.
    """

    def __init__(self, sim: "Simulator", clock: Callable[[], float] = time.perf_counter):
        self.sim = sim
        #: The wall-clock source (monkeypatchable in tests).
        self.clock = clock
        # Raw callback name -> [bucket, self_seconds, calls].  One flat
        # record keeps the dispatch hook to a single dict lookup per
        # callback — the bench_kernel overhead gate (< 10% wall over a
        # bare run) leaves no room for regex calls or parallel dicts in
        # this path; ``self_seconds``/``calls`` aggregate it lazily.
        self._stats: Dict[str, list] = {}
        #: Wall seconds spent inside bus.emit / gauge.set (the
        #: observability tax; hooks add to this from outside).
        self.telemetry_seconds = 0.0
        self.events_dispatched = 0
        self._attached = False
        self._t_attach = 0.0
        #: Wall seconds between attach and detach (run() included).
        self.wall_seconds = 0.0
        self._events_at_attach = 0

    # -- lifecycle ----------------------------------------------------------

    def attach(self) -> "KernelProfiler":
        """Install the hooks on the simulator, its bus and its gauges."""
        if self._attached:
            return self
        # Imported here so the simkernel keeps zero telemetry imports.
        from repro.telemetry.events import bus
        from repro.telemetry.gauges import gauges
        self.sim._profiler = self
        event_bus = bus(self.sim)
        event_bus.profiler = self
        board = gauges(self.sim)
        board.profiler = self
        for name in board.names():
            cell = board.get(name)
            if cell is not None:
                cell.profiler = self
        self._attached = True
        self._events_at_attach = self.sim.events_processed
        self._t_attach = self.clock()
        return self

    def detach(self) -> "KernelProfiler":
        """Remove the hooks and freeze the wall-clock totals."""
        if not self._attached:
            return self
        self.wall_seconds += self.clock() - self._t_attach
        from repro.telemetry.events import bus
        from repro.telemetry.gauges import gauges
        if self.sim._profiler is self:
            self.sim._profiler = None
        event_bus = bus(self.sim)
        if event_bus.profiler is self:
            event_bus.profiler = None
        board = gauges(self.sim)
        if board.profiler is self:
            board.profiler = None
        for name in board.names():
            cell = board.get(name)
            if cell is not None and cell.profiler is self:
                cell.profiler = None
        self._attached = False
        return self

    def __enter__(self) -> "KernelProfiler":
        return self.attach()

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # -- the kernel hook ----------------------------------------------------

    def run_callbacks(self, event: "Event", callbacks: List[Callable]) -> None:
        """Timed replacement for the kernel's callback dispatch loop.

        Must behave exactly like ``for cb in callbacks: cb(event)`` —
        same order, exceptions propagate — with each callback's wall
        time charged to its bucket.
        """
        clock = self.clock
        stats = self._stats
        self.events_dispatched += 1
        for cb in callbacks:
            owner = getattr(cb, "__self__", None)
            if owner is not None:
                name = getattr(owner, "name", "") or type(owner).__name__
            else:
                name = getattr(cb, "__qualname__",
                               getattr(cb, "__name__", "<callback>"))
            stat = stats.get(name)
            if stat is None:
                stat = stats[name] = [_DIGITS.sub("#", name), 0.0, 0]
            t0 = clock()
            try:
                cb(event)
            finally:
                stat[1] += clock() - t0
                stat[2] += 1

    # -- derived numbers ----------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._attached

    @property
    def self_seconds(self) -> Dict[str, float]:
        """Wall seconds spent executing event callbacks, per bucket."""
        out: Dict[str, float] = {}
        for bucket, seconds, _ in self._stats.values():
            out[bucket] = out.get(bucket, 0.0) + seconds
        return out

    @property
    def calls(self) -> Dict[str, int]:
        """Callback invocations per bucket."""
        out: Dict[str, int] = {}
        for bucket, _, count in self._stats.values():
            out[bucket] = out.get(bucket, 0) + count
        return out

    @property
    def dispatch_seconds(self) -> float:
        """Wall seconds inside profiled callbacks, total."""
        return sum(stat[1] for stat in self._stats.values())

    def elapsed(self) -> float:
        """Wall seconds observed so far (live while attached)."""
        if self._attached:
            return self.wall_seconds + (self.clock() - self._t_attach)
        return self.wall_seconds

    def events_covered(self) -> int:
        """Kernel events processed while the profiler was attached."""
        if self._attached:
            return self.sim.events_processed - self._events_at_attach
        return self.events_dispatched

    def events_per_second(self) -> float:
        """Kernel events dispatched per wall-clock second."""
        elapsed = self.elapsed()
        return self.events_dispatched / elapsed if elapsed > 0 else 0.0

    def simulation_seconds(self) -> float:
        """Callback wall time net of the telemetry recording inside it.

        Bus emits and gauge updates happen *within* handler frames, so
        their time is part of the per-bucket self time; subtracting the
        telemetry accumulator yields pure simulation work.
        """
        return max(0.0, self.dispatch_seconds - self.telemetry_seconds)

    def telemetry_fraction(self) -> float:
        """Telemetry's share of profiled dispatch time (the tax)."""
        if self.dispatch_seconds <= 0:
            return 0.0
        return min(1.0, self.telemetry_seconds / self.dispatch_seconds)

    def top(self, n: int = 10) -> List[Dict[str, Any]]:
        """The *n* hottest buckets by self time."""
        rows = [{"bucket": b, "self_seconds": s, "calls": self.calls.get(b, 0)}
                for b, s in self.self_seconds.items()]
        rows.sort(key=lambda r: (-r["self_seconds"], r["bucket"]))
        return rows[:n]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "wall_seconds": self.elapsed(),
            "events_dispatched": self.events_dispatched,
            "events_per_second": self.events_per_second(),
            "dispatch_seconds": self.dispatch_seconds,
            "simulation_seconds": self.simulation_seconds(),
            "telemetry_seconds": self.telemetry_seconds,
            "telemetry_fraction": self.telemetry_fraction(),
            "buckets": self.top(n=len(self.self_seconds)),
        }

    def report(self, top: int = 12) -> str:
        """An aligned text report: throughput, split, hottest handlers."""
        lines = [
            f"events dispatched   {self.events_dispatched}",
            f"wall seconds        {self.elapsed():.4f}",
            f"events/second       {self.events_per_second():,.0f}",
            f"dispatch seconds    {self.dispatch_seconds:.4f}",
            f"  simulation        {self.simulation_seconds():.4f}",
            f"  telemetry         {self.telemetry_seconds:.4f}"
            f"  ({self.telemetry_fraction():.1%} of dispatch)",
        ]
        rows = [("handler", "self_s", "calls", "share")]
        total = self.dispatch_seconds or 1.0
        for r in self.top(top):
            rows.append((r["bucket"], f"{r['self_seconds']:.4f}",
                         str(r["calls"]), f"{r['self_seconds'] / total:.1%}"))
        widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
        lines.append("")
        lines.extend(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in rows)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "attached" if self._attached else "detached"
        return (f"<KernelProfiler {state} events={self.events_dispatched} "
                f"eps={self.events_per_second():,.0f}>")


def profile(sim: "Simulator",
            clock: Callable[[], float] = time.perf_counter) -> KernelProfiler:
    """A fresh (unattached) profiler for *sim* — use as a context manager."""
    return KernelProfiler(sim, clock=clock)
