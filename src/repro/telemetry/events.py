"""The structured event bus: one shared stream every layer feeds.

Before this module the stack's instrumentation was three disconnected
islands — the host sampler (3-second resource rates), the per-operation
:class:`~repro.telemetry.metrics.MetricsRegistry`, and per-request
:class:`~repro.core.context.TraceSpan` trees.  The bus ties them
together: every layer (WS pipeline, onServe core, the Cyberaide agent,
GRAM, GridFTP, the batch scheduler, the WAL) emits small *typed* events
with the simulated timestamp and, where one exists, the request id —
so any analysis can correlate a SOAP request with the GridFTP transfer
and LRM job it caused.

Observational purity
--------------------
Emitting is plain Python bookkeeping: no simulation events are created,
no simulated time is consumed, and subscriber callbacks run synchronously
in the emitter's stack frame.  Attaching (or ignoring) the bus therefore
cannot change a run's timing — the property the golden-series tests
pin down byte-for-byte.

The bus is a *ring*: the newest ``capacity`` events are retained
(per-kind counters keep exact totals across eviction), which bounds
memory on arbitrarily long runs.

Usage::

    from repro.telemetry.events import bus
    bus(sim).emit("gram.submit", layer="grid", request_id=rid,
                  site=site.name, job_id=job_id)

``bus(sim)`` lazily attaches one :class:`EventBus` per simulator, so
every component of a run shares the same stream and a fresh simulator
always starts with an empty one.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any, Callable, Deque, Dict, Iterable, List, Optional, TYPE_CHECKING,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["TelemetryEvent", "EventBus", "bus"]

#: Default ring capacity (events, not bytes).
DEFAULT_CAPACITY = 65536


class TelemetryEvent:
    """One structured occurrence on the bus."""

    __slots__ = ("ts", "kind", "layer", "request_id", "fields")

    def __init__(self, ts: float, kind: str, layer: str,
                 request_id: Optional[str], fields: Dict[str, Any]):
        #: Simulated time of emission.
        self.ts = ts
        #: Dotted event type, e.g. ``"ws.request"`` or ``"sched.start"``.
        self.kind = kind
        #: Emitting layer: ws / core / agent / grid / db / mds.
        self.layer = layer
        #: Correlating request id (``None`` when no context was in scope).
        self.request_id = request_id
        #: Event-specific payload (small scalars only, by convention).
        self.fields = fields

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def as_dict(self) -> Dict[str, Any]:
        return {"ts": self.ts, "kind": self.kind, "layer": self.layer,
                "request_id": self.request_id, **self.fields}

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        rid = f" rid={self.request_id}" if self.request_id else ""
        return f"<TelemetryEvent {self.kind}@{self.ts:.3f}{rid}>"


class EventBus:
    """A ring-buffered, subscribable stream of :class:`TelemetryEvent`."""

    def __init__(self, sim: "Simulator", capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("bus capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._ring: Deque[TelemetryEvent] = deque(maxlen=capacity)
        #: kind -> exact emission count (survives ring eviction).
        self._counts: Dict[str, int] = {}
        #: (callback, kinds-or-None) subscriber slots.
        self._subscribers: List[List[Any]] = []
        self.emitted = 0
        #: Wall-clock profiler accounting recorder (None = off): when
        #: set, the wall time spent inside :meth:`emit` — including
        #: subscriber callbacks — is charged to the telemetry side of
        #: the profiler's overhead split.
        self.profiler = None

    # -- emission -----------------------------------------------------------

    def emit(self, kind: str, layer: str = "",
             request_id: Optional[str] = None,
             **fields: Any) -> TelemetryEvent:
        """Record one event at the current simulated time.

        Purely observational: allocates no simulation events; subscriber
        callbacks run inline and must be observational too.
        """
        profiler = self.profiler
        t0 = profiler.clock() if profiler is not None else 0.0
        event = TelemetryEvent(self.sim.now, kind, layer, request_id, fields)
        self._ring.append(event)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self.emitted += 1
        for slot in self._subscribers:
            kinds = slot[1]
            if kinds is None or kind in kinds:
                slot[0](event)
        if profiler is not None:
            profiler.telemetry_seconds += profiler.clock() - t0
        return event

    # -- subscription -------------------------------------------------------

    def subscribe(self, callback: Callable[[TelemetryEvent], None],
                  kinds: Optional[Iterable[str]] = None,
                  ) -> Callable[[], None]:
        """Call *callback* on every future event (optionally filtered).

        Returns an unsubscribe function.  Callbacks must be pure
        observers — they run inside the emitting component.
        """
        slot = [callback, frozenset(kinds) if kinds is not None else None]
        self._subscribers.append(slot)

        def unsubscribe() -> None:
            if slot in self._subscribers:
                self._subscribers.remove(slot)

        return unsubscribe

    # -- queries ------------------------------------------------------------

    def events(self, kind: Optional[str] = None,
               layer: Optional[str] = None,
               request_id: Optional[str] = None) -> List[TelemetryEvent]:
        """Retained events matching the filters, oldest first."""
        out = []
        for ev in self._ring:
            if kind is not None and ev.kind != kind:
                continue
            if layer is not None and ev.layer != layer:
                continue
            if request_id is not None and ev.request_id != request_id:
                continue
            out.append(ev)
        return out

    def first(self, kind: str, **field_filters: Any) -> Optional[TelemetryEvent]:
        """Oldest retained event of *kind* whose fields match the filters."""
        for ev in self._ring:
            if ev.kind != kind:
                continue
            if all(ev.fields.get(k) == v for k, v in field_filters.items()):
                return ev
        return None

    def counts(self) -> Dict[str, int]:
        """Exact per-kind emission totals (eviction-proof)."""
        return dict(self._counts)

    def __len__(self) -> int:
        """Number of *retained* events (<= capacity)."""
        return len(self._ring)

    def __iter__(self):
        return iter(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<EventBus retained={len(self._ring)} "
                f"emitted={self.emitted} kinds={len(self._counts)}>")


def bus(sim: "Simulator") -> EventBus:
    """The simulator's event bus (lazily attached, one per run).

    Mirrors how request ids hang off the simulator: state tied to a run
    lives on its :class:`~repro.simkernel.kernel.Simulator` so a fresh
    simulator always starts clean — which is what keeps telemetry out
    of cross-run determinism questions.
    """
    existing = getattr(sim, "_telemetry_bus", None)
    if existing is None:
        existing = EventBus(sim)
        sim._telemetry_bus = existing  # type: ignore[attr-defined]
    return existing
