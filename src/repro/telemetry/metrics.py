"""Per-service / per-operation request metrics.

Where :mod:`repro.telemetry.sampler` watches *hosts* (the paper's
3-second resource graphs), this module watches *requests*: the metrics
interceptor in :mod:`repro.ws.pipeline` feeds one
:class:`OperationMetrics` per ``(service, operation)`` pair with the
latency and outcome of every call that crosses a SOAP boundary, so any
experiment can ask "what did ``CyberaideAgent.submitJob`` cost, and how
often did it fault?" without touching the request path.

Purely observational: recording a sample allocates no simulation events
and consumes no simulated time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["LatencyHistogram", "OperationMetrics", "MetricsRegistry"]

#: Histogram bucket upper bounds, in simulated seconds.  The last bucket
#: is open-ended.  Chosen to resolve both sub-second SOAP dispatches and
#: multi-minute grid executions.
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0)


class LatencyHistogram:
    """A fixed-bucket latency histogram plus running summary stats."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, latency: float) -> None:
        self.count += 1
        self.total += latency
        self.min = min(self.min, latency)
        self.max = max(self.max, latency)
        for i, bound in enumerate(self.bounds):
            if latency <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold *other*'s samples into this histogram, in place.

        The fleet rollups aggregate per-replica histograms into
        per-service / per-principal views, so two histograms must be
        combinable after the fact.  Requires identical bucket bounds —
        resampling across different bucketings would silently distort
        quantiles.  Returns ``self`` for chaining.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.bounds} vs {other.bounds})")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self

    def __iadd__(self, other: "LatencyHistogram") -> "LatencyHistogram":
        return self.merge(other)

    def __add__(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """A fresh histogram holding both sides' samples."""
        out = LatencyHistogram(self.bounds)
        out.merge(self)
        out.merge(other)
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (upper bound).

        q=0 returns the observed minimum and q=1 the observed maximum;
        in between, the answer is the upper bound of the bucket holding
        the target rank, clamped into [min, max] so an all-in-one-bucket
        histogram never reports a latency outside what was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                bound = self.bounds[i] if i < len(self.bounds) else self.max
                return min(max(bound, self.min), self.max)
        return self.max

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "buckets": dict(zip([f"le_{b:g}" for b in self.bounds]
                                + ["le_inf"], self.counts)),
        }


class OperationMetrics:
    """Everything recorded about one ``(service, operation)`` pair."""

    __slots__ = ("service", "operation", "latency", "calls", "faults",
                 "fault_codes")

    def __init__(self, service: str, operation: str):
        self.service = service
        self.operation = operation
        self.latency = LatencyHistogram()
        self.calls = 0
        self.faults = 0
        #: fault detail/class name -> count.
        self.fault_codes: Dict[str, int] = {}

    def record(self, latency: float, fault: Optional[str] = None) -> None:
        self.calls += 1
        self.latency.observe(latency)
        if fault is not None:
            self.faults += 1
            self.fault_codes[fault] = self.fault_codes.get(fault, 0) + 1

    @property
    def fault_rate(self) -> float:
        return self.faults / self.calls if self.calls else 0.0

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<OperationMetrics {self.service}.{self.operation} "
                f"calls={self.calls} faults={self.faults}>")


class MetricsRegistry:
    """All operation metrics of one container (server or client) side."""

    def __init__(self, name: str = "metrics"):
        self.name = name
        self._ops: Dict[Tuple[str, str], OperationMetrics] = {}

    def operation(self, service: str, operation: str) -> OperationMetrics:
        """The (created-on-first-use) metrics cell for one operation."""
        key = (service, operation)
        cell = self._ops.get(key)
        if cell is None:
            cell = self._ops[key] = OperationMetrics(service, operation)
        return cell

    def record(self, service: str, operation: str, latency: float,
               fault: Optional[str] = None) -> None:
        self.operation(service, operation).record(latency, fault)

    def get(self, service: str, operation: str) -> Optional[OperationMetrics]:
        """The metrics cell, or ``None`` if nothing was recorded."""
        return self._ops.get((service, operation))

    def all(self) -> List[OperationMetrics]:
        """Every cell, ordered by (service, operation)."""
        return [self._ops[k] for k in sorted(self._ops)]

    def total_calls(self) -> int:
        return sum(m.calls for m in self._ops.values())

    def total_faults(self) -> int:
        return sum(m.faults for m in self._ops.values())

    def table(self) -> str:
        """An aligned text table of every operation's headline numbers."""
        rows = [("service.operation", "calls", "faults", "mean_s", "max_s")]
        for m in self.all():
            rows.append((f"{m.service}.{m.operation}", str(m.calls),
                         str(m.faults), f"{m.latency.mean:.3f}",
                         f"{m.latency.max:.3f}"))
        widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
        return "\n".join(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in rows)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<MetricsRegistry {self.name!r} ops={len(self._ops)} "
                f"calls={self.total_calls()}>")
