"""Gauges: instantaneous levels (queue depths, utilization) as series.

Where the host sampler polls cumulative hardware counters on a fixed
interval, a :class:`Gauge` is *change-driven*: the instrumented
component records the new level at the simulated instant it changes,
and the gauge appends a sample only when the value actually moved.  No
sampling process, no simulation events — attaching gauges cannot
perturb a run (the same purity rule the event bus follows), yet the
result is an ordinary :class:`~repro.telemetry.series.TimeSeries` that
plots and summarizes alongside the sampler's.

The :class:`GaugeBoard` is the per-simulator registry.  Components
create their gauges through ``gauges(sim).gauge(name, unit)``; analysis
code reads them back by name.  ``attach_resource`` instruments a
:class:`~repro.simkernel.resources.Resource` (wait-queue depth and slot
utilization) through the resource's observer hook, so GRAM head-node
CPU queues and any other simkernel resource become visible without the
simkernel layer knowing telemetry exists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.telemetry.series import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator
    from repro.simkernel.resources import Resource

__all__ = ["Gauge", "GaugeBoard", "gauges"]


def _labels_key(name: str, labels: Optional[Dict[str, str]]) -> str:
    """The board key of a (possibly labelled) gauge.

    Labelled gauges share a *family* name and differ by label set —
    ``router.inflight{replica="appliance02"}`` — mirroring Prometheus
    child series, so exporters can render one ``# TYPE`` header per
    family with one labelled sample per child.
    """
    if not labels:
        return name
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{name}{{{body}}}"


class Gauge:
    """One instantaneous level, recorded as a step series on change."""

    __slots__ = ("sim", "series", "_current", "family", "labels", "profiler")

    def __init__(self, sim: "Simulator", name: str, unit: str = "",
                 labels: Optional[Dict[str, str]] = None):
        self.sim = sim
        #: Family name without labels (what Prometheus calls the metric).
        self.family = name
        #: Label set distinguishing this child within its family.
        self.labels: Dict[str, str] = dict(labels or {})
        self.series = TimeSeries(_labels_key(name, self.labels), unit=unit)
        self._current = 0.0
        #: Wall-clock profiler accounting recorder (None = off).
        self.profiler = None

    @property
    def current(self) -> float:
        return self._current

    @property
    def name(self) -> str:
        return self.series.name

    def set(self, value: float) -> None:
        """Record *value* at the current simulated time (if it changed)."""
        if value == self._current and len(self.series):
            return
        profiler = self.profiler
        if profiler is None:
            self._current = float(value)
            self.series.append(self.sim.now, self._current)
            return
        t0 = profiler.clock()
        self._current = float(value)
        self.series.append(self.sim.now, self._current)
        profiler.telemetry_seconds += profiler.clock() - t0

    def adjust(self, delta: float) -> None:
        """Shift the level by *delta* (e.g. +1 on enqueue, -1 on grant)."""
        self.set(self._current + delta)

    def peak(self) -> float:
        """Highest level ever recorded."""
        return self.series.max()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<Gauge {self.series.name!r} current={self._current:g} "
                f"samples={len(self.series)}>")


class GaugeBoard:
    """All gauges of one simulator run, created on first use."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._gauges: Dict[str, Gauge] = {}
        #: Propagated onto every new gauge (wall-clock accounting only).
        self.profiler = None

    def gauge(self, name: str, unit: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        """The (created-on-first-use) gauge called *name*.

        With *labels*, the gauge is one child of the ``name`` family,
        keyed by its full ``name{label="value",...}`` form.
        """
        key = _labels_key(name, labels)
        cell = self._gauges.get(key)
        if cell is None:
            cell = self._gauges[key] = Gauge(self.sim, name, unit=unit,
                                             labels=labels)
            cell.profiler = self.profiler
        return cell

    def get(self, name: str,
            labels: Optional[Dict[str, str]] = None) -> Optional[Gauge]:
        return self._gauges.get(_labels_key(name, labels))

    def family(self, name: str) -> List[Gauge]:
        """Every child gauge of family *name*, key-ordered."""
        return [self._gauges[key] for key in sorted(self._gauges)
                if self._gauges[key].family == name]

    def names(self) -> List[str]:
        return sorted(self._gauges)

    def series(self) -> List[TimeSeries]:
        """Every gauge's series, name-ordered (for reports/exporters)."""
        return [self._gauges[name].series for name in sorted(self._gauges)]

    def peaks(self) -> Dict[str, float]:
        """name -> peak level, for bottleneck summaries."""
        return {name: self._gauges[name].peak()
                for name in sorted(self._gauges)}

    # -- instrumentation helpers -------------------------------------------

    def attach_resource(self, resource: "Resource", prefix: str) -> None:
        """Gauge a simkernel Resource's wait queue and utilization.

        Installs an observer on *resource* feeding two gauges:
        ``<prefix>.queue`` (waiting requests) and ``<prefix>.in_use``
        (held slots).  The observer is a pure recorder; the resource
        keeps zero telemetry knowledge.
        """
        queue_g = self.gauge(f"{prefix}.queue", unit="reqs")
        used_g = self.gauge(f"{prefix}.in_use", unit="slots")

        def observe(res: "Resource") -> None:
            queue_g.set(len(res.queue))
            used_g.set(len(res.users))

        resource.observer = observe
        observe(resource)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<GaugeBoard gauges={len(self._gauges)}>"


def gauges(sim: "Simulator") -> GaugeBoard:
    """The simulator's gauge board (lazily attached, one per run)."""
    existing = getattr(sim, "_gauge_board", None)
    if existing is None:
        existing = GaugeBoard(sim)
        sim._gauge_board = existing  # type: ignore[attr-defined]
    return existing
