"""Telemetry: time-series sampling of simulated hosts.

The paper's evaluation (Figures 6-8) plots CPU utilization, disk read/write
rates and network in/out rates of the appliance host, sampled every
3 seconds.  :class:`~repro.telemetry.sampler.HostSampler` reproduces that
instrument: it runs as a simulation process, reads the host's exact
cumulative counters each interval, and records per-interval rates into
:class:`~repro.telemetry.series.TimeSeries` objects.
"""

from repro.telemetry.critical_path import Attribution, analyze_request
from repro.telemetry.events import EventBus, TelemetryEvent, bus
from repro.telemetry.export import chrome_trace, prometheus_text
from repro.telemetry.fleet import (
    ControlTower, FleetRollup, HotShardDetector, ReplicaStats,
)
from repro.telemetry.gauges import Gauge, GaugeBoard, gauges
from repro.telemetry.metrics import (
    LatencyHistogram, MetricsRegistry, OperationMetrics,
)
from repro.telemetry.profiler import KernelProfiler, profile
from repro.telemetry.report import from_csv, render_figure, series_table, to_csv
from repro.telemetry.sampler import HostSampler
from repro.telemetry.series import TimeSeries
from repro.telemetry.slo import DEFAULT_BURN_RULES, BurnRule, SloSpec, SloTracker

__all__ = ["TimeSeries", "HostSampler", "render_figure", "series_table",
           "to_csv", "from_csv", "LatencyHistogram", "MetricsRegistry",
           "OperationMetrics", "TelemetryEvent", "EventBus", "bus",
           "Gauge", "GaugeBoard", "gauges", "prometheus_text",
           "chrome_trace", "Attribution", "analyze_request",
           "SloSpec", "BurnRule", "SloTracker", "DEFAULT_BURN_RULES",
           "ReplicaStats", "FleetRollup", "HotShardDetector", "ControlTower",
           "KernelProfiler", "profile"]
