"""Time-series container with the analysis helpers the experiments need."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Tuple

__all__ = ["TimeSeries"]


class TimeSeries:
    """An append-only series of (time, value) samples.

    Samples must be appended in non-decreasing time order; analysis
    helpers cover what the scenario assertions and benchmark reports
    need (peaks, plateaus, integrals, basic stats).
    """

    def __init__(self, name: str = "", unit: str = ""):
        self.name = name
        self.unit = unit
        self._times: List[float] = []
        self._values: List[float] = []

    # -- building -------------------------------------------------------------

    def append(self, t: float, value: float) -> None:
        """Record *value* at time *t* (must not precede the last sample)."""
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"{self.name}: sample at t={t} precedes last t={self._times[-1]}"
            )
        self._times.append(float(t))
        self._values.append(float(value))

    # -- access -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def value_at(self, t: float) -> float:
        """Value of the latest sample at or before *t* (0 if none).

        Times are non-decreasing by construction, so this is a binary
        search — O(log n) where gauge-heavy runs used to pay O(n) per
        lookup inside the critical-path analyzer.
        """
        idx = bisect_right(self._times, t)
        if idx == 0:
            return 0.0
        return self._values[idx - 1]

    def slice(self, t0: float, t1: float) -> "TimeSeries":
        """Samples with t0 <= t <= t1, as a new series (binary search)."""
        out = TimeSeries(self.name, self.unit)
        lo = bisect_left(self._times, t0)
        hi = bisect_right(self._times, t1)
        out._times = self._times[lo:hi]
        out._values = self._values[lo:hi]
        return out

    # -- stats ------------------------------------------------------------------

    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    def mean(self) -> float:
        return sum(self._values) / len(self._values) if self._values else 0.0

    def total(self) -> float:
        """Sum of values (e.g. total KB when values are KB/interval)."""
        return sum(self._values)

    def percentile(self, p: float) -> float:
        """The *p*-th percentile of the values (linear interpolation).

        ``p`` is in [0, 100]; an empty series yields 0.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p!r} outside [0, 100]")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        frac = rank - lo
        if lo + 1 >= len(ordered):
            return ordered[-1]
        return ordered[lo] * (1 - frac) + ordered[lo + 1] * frac

    def summary(self) -> dict:
        """min/mean/p50/p95/max in one dict (for reports)."""
        return {
            "min": self.min(),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max(),
        }

    def integral(self) -> float:
        """Trapezoidal integral of value over time."""
        area = 0.0
        for i in range(1, len(self._times)):
            dt = self._times[i] - self._times[i - 1]
            area += 0.5 * (self._values[i] + self._values[i - 1]) * dt
        return area

    # -- shape analysis -----------------------------------------------------------

    def peaks(self, threshold: float) -> List[Tuple[float, float]]:
        """Maximal intervals where value >= threshold, as (t_start, t_end).

        This is how scenario tests assert figure shapes ("two disk-write
        peaks", "a network plateau from t≈5 to t≈65").
        """
        intervals: List[Tuple[float, float]] = []
        start: Optional[float] = None
        last_t = 0.0
        for t, v in self:
            if v >= threshold and start is None:
                start = t
            elif v < threshold and start is not None:
                intervals.append((start, t))
                start = None
            last_t = t
        if start is not None:
            intervals.append((start, last_t))
        return intervals

    def peak_count(self, threshold: float, min_gap: float = 0.0) -> int:
        """Number of distinct peaks above *threshold*.

        Peaks separated by less than *min_gap* seconds are merged —
        useful when a single logical burst spans two sample intervals.
        """
        merged = self.merged_peaks(threshold, min_gap)
        return len(merged)

    def merged_peaks(self, threshold: float,
                     min_gap: float = 0.0) -> List[Tuple[float, float]]:
        """Like :meth:`peaks` but merging peaks closer than *min_gap*."""
        raw = self.peaks(threshold)
        if not raw:
            return []
        merged = [raw[0]]
        for start, end in raw[1:]:
            if start - merged[-1][1] < min_gap:
                merged[-1] = (merged[-1][0], end)
            else:
                merged.append((start, end))
        return merged

    def plateau(self, lo: float, hi: float,
                min_duration: float = 0.0) -> List[Tuple[float, float]]:
        """Maximal intervals where lo <= value <= hi lasting >= min_duration."""
        intervals: List[Tuple[float, float]] = []
        start: Optional[float] = None
        last_t = 0.0
        for t, v in self:
            inside = lo <= v <= hi
            if inside and start is None:
                start = t
            elif not inside and start is not None:
                intervals.append((start, t))
                start = None
            last_t = t
        if start is not None:
            intervals.append((start, last_t))
        return [(a, b) for a, b in intervals if (b - a) >= min_duration]

    def nonzero_fraction(self, eps: float = 1e-12) -> float:
        """Fraction of samples with |value| > eps."""
        if not self._values:
            return 0.0
        return sum(1 for v in self._values if abs(v) > eps) / len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<TimeSeries {self.name!r} n={len(self)} "
                f"max={self.max():.3g}{self.unit}>")
