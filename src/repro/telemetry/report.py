"""Rendering of telemetry series: ASCII figures, tables, CSV.

The benchmark harnesses use these to print the same series the paper's
figures plot, so a run's output can be compared against the paper
shape-by-shape (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.telemetry.series import TimeSeries

__all__ = ["sparkline", "render_figure", "series_table", "to_csv",
           "from_csv"]

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(series: TimeSeries, width: int = 72) -> str:
    """A one-line unicode bar rendering of *series*, rescaled to *width*."""
    values = series.values
    if not values:
        return "(empty)"
    # Downsample/bucket to the requested width by averaging.
    buckets: List[float] = []
    n = len(values)
    if n <= width:
        buckets = list(values)
    else:
        per = n / width
        for i in range(width):
            lo = int(i * per)
            hi = max(lo + 1, int((i + 1) * per))
            chunk = values[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
    top = max(buckets)
    if top <= 0:
        return _BARS[0] * len(buckets)
    chars = []
    for v in buckets:
        idx = round(v / top * (len(_BARS) - 1))
        chars.append(_BARS[max(0, min(idx, len(_BARS) - 1))])
    return "".join(chars)


def render_figure(title: str, series_list: Sequence[TimeSeries],
                  width: int = 72) -> str:
    """Render a titled multi-series ASCII figure (one sparkline per metric)."""
    lines = [title, "=" * len(title)]
    for s in series_list:
        label = f"{s.name} [{s.unit}]".ljust(34)
        lines.append(f"{label} max={s.max():10.2f}  mean={s.mean():8.2f}")
        lines.append(f"  {sparkline(s, width)}")
    return "\n".join(lines)


def series_table(series_list: Sequence[TimeSeries],
                 max_rows: int = 0) -> str:
    """Render series as an aligned table: time column + one value column each.

    All series must share their time base (true for one sampler's output).
    *max_rows* > 0 truncates the middle of long tables.
    """
    if not series_list:
        return "(no series)"
    times = series_list[0].times
    headers = ["t(s)"] + [s.name for s in series_list]
    rows: List[List[str]] = []
    for i, t in enumerate(times):
        row = [f"{t:.1f}"]
        for s in series_list:
            vals = s.values
            row.append(f"{vals[i]:.2f}" if i < len(vals) else "")
        rows.append(row)
    if max_rows and len(rows) > max_rows:
        head = rows[: max_rows // 2]
        tail = rows[-(max_rows - max_rows // 2):]
        rows = head + [["..."] * len(headers)] + tail
    widths = [max([len(h)] + [len(r[c]) for r in rows])
              for c, h in enumerate(headers)]
    def fmt(row: List[str]) -> str:
        return "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
    return "\n".join([fmt(headers)] + [fmt(r) for r in rows])


def to_csv(series_list: Sequence[TimeSeries]) -> str:
    """Serialize series (shared time base) as CSV text."""
    if not series_list:
        return ""
    header = "time," + ",".join(s.name for s in series_list)
    lines = [header]
    times = series_list[0].times
    for i, t in enumerate(times):
        cells = [f"{t:g}"]
        for s in series_list:
            vals = s.values
            cells.append(f"{vals[i]:g}" if i < len(vals) else "")
        lines.append(",".join(cells))
    return "\n".join(lines)


def from_csv(text: str) -> List[TimeSeries]:
    """Parse :func:`to_csv` output back into series (round-trip inverse).

    Empty cells (a shorter series on a shared time base) are skipped,
    mirroring how ``to_csv`` emits them.
    """
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        return []
    headers = lines[0].split(",")
    if headers[0] != "time":
        raise ValueError(f"not a series CSV (header {headers[0]!r})")
    series_list = [TimeSeries(name) for name in headers[1:]]
    for ln in lines[1:]:
        cells = ln.split(",")
        t = float(cells[0])
        for s, cell in zip(series_list, cells[1:]):
            if cell != "":
                s.append(t, float(cell))
    return series_list
