"""Shared-resource primitives: Resource, Container and Store.

These mirror the classic SimPy trio:

* :class:`Resource` — a fixed number of slots; processes queue for one.
* :class:`Container` — a homogeneous quantity (e.g. disk space) that can
  be put into / taken from.
* :class:`Store` — a queue of distinct Python objects.

All waiting is FIFO (optionally priority-ordered for ``Resource``), which
keeps contention deterministic.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.simkernel.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["Resource", "Request", "Container", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Fires (with value ``self``) once the slot is granted.  Use as a
    context manager or call :meth:`release` explicitly::

        req = resource.request()
        yield req
        ...
        resource.release(req)
    """

    __slots__ = ("resource", "priority", "key")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim, name=f"request:{resource.name}")
        self.resource = resource
        self.priority = priority
        self.key = (priority, next(resource._ticket))

    def release(self) -> None:
        """Give the slot back (or withdraw the queued request)."""
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class Resource:
    """*capacity* identical slots with a FIFO (priority-aware) wait queue."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users: list[Request] = []
        self.queue: list[Request] = []
        self._ticket = itertools.count()
        #: Optional pure observer, called with the resource after every
        #: queue/grant/release change.  Telemetry gauges hang off this
        #: hook (see :meth:`repro.telemetry.gauges.GaugeBoard
        #: .attach_resource`); it must not create simulation events.
        self.observer = None

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when granted.

        Lower *priority* values are served first; ties are FIFO.
        """
        req = Request(self, priority=priority)
        self.queue.append(req)
        self.queue.sort(key=lambda r: r.key)
        self._grant()
        if self.observer is not None:
            self.observer(self)
        return req

    def release(self, request: Request) -> None:
        """Return a held slot, or withdraw a still-queued request."""
        if request in self.users:
            self.users.remove(request)
            self._grant()
        elif request in self.queue:
            self.queue.remove(request)
        # Releasing twice is tolerated: __exit__ after an explicit release
        # must not blow up.
        if self.observer is not None:
            self.observer(self)

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            req = self.queue.pop(0)
            self.users.append(req)
            req.succeed(req)


class Container:
    """A homogeneous quantity with blocking put/get.

    ``get`` events fire once the requested amount is available; ``put``
    events fire once there is room below *capacity*.  Waiters are served
    FIFO — a large get at the head blocks smaller ones behind it, which is
    exactly the fairness you want for disk-space style accounting.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf"),
                 init: float = 0.0, name: str = ""):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)
        self.name = name
        self._getters: list[tuple[float, Event]] = []
        self._putters: list[tuple[float, Event]] = []

    def put(self, amount: float) -> Event:
        """Add *amount*; fires when it fits under capacity."""
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        ev = Event(self.sim, name=f"put:{self.name}")
        self._putters.append((amount, ev))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove *amount*; fires when that much is available."""
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        ev = Event(self.sim, name=f"get:{self.name}")
        self._getters.append((amount, ev))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, ev = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.pop(0)
                    self.level += amount
                    ev.succeed(amount)
                    progressed = True
            if self._getters:
                amount, ev = self._getters[0]
                if amount <= self.level:
                    self._getters.pop(0)
                    self.level -= amount
                    ev.succeed(amount)
                    progressed = True


class Store:
    """A FIFO queue of distinct items with blocking put/get."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf"),
                 name: str = ""):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Any, Event]] = []

    def put(self, item: Any) -> Event:
        """Append *item*; fires when there is room."""
        ev = Event(self.sim, name=f"put:{self.name}")
        self._putters.append((item, ev))
        self._settle()
        return ev

    def get(self) -> Event:
        """Pop the oldest item; fires when one exists."""
        ev = Event(self.sim, name=f"get:{self.name}")
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self.items) < self.capacity:
                item, ev = self._putters.pop(0)
                self.items.append(item)
                ev.succeed(item)
                progressed = True
            if self._getters and self.items:
                ev = self._getters.pop(0)
                ev.succeed(self.items.pop(0))
                progressed = True
