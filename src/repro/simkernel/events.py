"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence in simulated time.  It moves
through three states:

* *pending* — created, not yet triggered;
* *triggered* — given a value (or an exception) and placed on the
  simulator's event queue;
* *processed* — its callbacks have run.

Processes wait on events by ``yield``-ing them; the kernel wires the
process's resumption in as a callback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["Event", "Timeout", "ConditionEvent", "AnyOf", "AllOf"]

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: Callbacks invoked (in order) when the event is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        # When an event fails and nobody waits on it, the kernel re-raises
        # the exception at the end of the run unless the event was defused.
        self._defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued for processing."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance when it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have *exception* thrown into
        it at its yield point.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self)
        return self

    def trigger(self, other: "Event") -> None:
        """Copy *other*'s outcome onto this event (used by conditions)."""
        if other._ok:
            self.succeed(other._value)
        else:
            other.defused()
            self.fail(other._value)

    def defused(self) -> None:
        """Mark a failed event as handled so the kernel won't re-raise it."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register *fn* to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (this keeps late waiters correct).
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = ""):
        if delay < 0:
            from repro.errors import CausalityError
            raise CausalityError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name=name)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, delay=delay)


class ConditionEvent(Event):
    """Base for composite events over a set of child events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
        else:
            for ev in self.events:
                ev.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        """Outcome dictionary: every finished child event -> its value."""
        return {ev: ev._value for ev in self.events if ev.processed or ev.triggered}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(ConditionEvent):
    """Fires as soon as any child event fires.

    The value is a dict mapping the (so far) finished events to their
    values.  A failing child fails the condition.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused()
            return
        if not event._ok:
            event.defused()
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(ConditionEvent):
    """Fires once every child event has fired.

    The value is a dict mapping all events to their values.  The first
    failing child fails the condition immediately.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused()
            return
        if not event._ok:
            event.defused()
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())
