"""Generator-based simulation processes.

A process wraps a Python generator.  Each ``yield`` must produce an
:class:`~repro.simkernel.events.Event`; the process sleeps until that
event fires and is resumed with the event's value (or has the event's
exception thrown into it at the yield point).

A :class:`Process` is itself an event that fires when the generator
returns, so processes can wait on each other::

    def parent(sim):
        child = sim.process(work(sim))
        result = yield child          # waits for work() to finish
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.simkernel.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupted process may catch it and continue; the event it was
    waiting on remains pending and its eventual value is discarded.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Process(Event):
    """An event representing a running generator-based process."""

    __slots__ = ("generator", "_target", "_interrupts")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() needs a generator, got {type(generator).__name__} "
                f"(did you forget a 'yield'?)"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", ""))
        self.generator = generator
        #: The event this process currently waits on (None before start /
        #: after termination).
        self._target: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        # Kick the process off via an immediately-scheduled event so that
        # creation order, not construction stack depth, defines execution
        # order.
        start = Event(sim, name=f"start:{self.name}")
        start.callbacks.append(self._resume)
        start.succeed()
        self._target = start

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a dead process raises :class:`SimulationError`.
        Multiple interrupts queue up and are delivered one per resume.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self._target is None:
            raise SimulationError("cannot interrupt a process before it starts")
        self._interrupts.append(Interrupt(cause))
        # Deliver via a zero-delay event so interrupt() is safe to call
        # from any context (including the interrupted process's own
        # callbacks running this instant).
        wake = Event(self.sim, name=f"interrupt:{self.name}")
        wake.callbacks.append(self._deliver_interrupt)
        wake.succeed()

    # -- internal ----------------------------------------------------------

    def _deliver_interrupt(self, _event: Event) -> None:
        if not self._interrupts or not self.is_alive:
            return
        exc = self._interrupts.pop(0)
        # Detach from the event we were waiting on: its firing must no
        # longer resume us (we resume now, via the throw).
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._step(exc=exc)

    def _resume(self, event: Event) -> None:
        self._step(event=event)

    def _step(self, event: Optional[Event] = None,
              exc: Optional[BaseException] = None) -> None:
        """Advance the generator one yield."""
        self._target = None
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            elif event is not None and not event._ok:
                event.defused()
                target = self.generator.throw(event._value)
            else:
                target = self.generator.send(event._value if event else None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:
            self.fail(error)
            return

        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event instances"
            )
            self.generator.close()
            self.fail(error)
            return
        if target.sim is not self.sim:
            self.generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded an event from a different simulator"
            ))
            return
        self._target = target
        target.add_callback(self._resume)
