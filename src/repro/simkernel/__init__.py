"""Discrete-event simulation kernel.

A small, deterministic, from-scratch discrete-event engine in the style of
SimPy: simulation *processes* are Python generators that ``yield`` events
(timeouts, other events, resource requests) and are resumed when those
events fire.  All timing in the reproduction — job execution, file
transfers, CPU contention, disk I/O — flows through one
:class:`~repro.simkernel.kernel.Simulator` instance, which makes every
experiment exactly reproducible.

Quick example::

    from repro.simkernel import Simulator

    sim = Simulator()

    def worker(name, delay):
        yield sim.timeout(delay)
        print(f"{name} done at t={sim.now}")

    sim.process(worker("a", 3.0))
    sim.process(worker("b", 1.5))
    sim.run()
"""

from repro.simkernel.events import AllOf, AnyOf, Event, Timeout
from repro.simkernel.kernel import Simulator
from repro.simkernel.process import Interrupt, Process
from repro.simkernel.resources import Container, Resource, Store
from repro.simkernel.rng import RngRegistry

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Interrupt",
    "Resource",
    "Container",
    "Store",
    "RngRegistry",
]
