"""The :class:`Simulator`: clock, event queue and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.errors import CausalityError, SimulationError
from repro.simkernel.events import AllOf, AnyOf, Event, Timeout
from repro.simkernel.process import Process
from repro.simkernel.rng import RngRegistry

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns the clock (:attr:`now`, in simulated seconds), a
    priority queue of triggered events, and a registry of named random
    streams (:attr:`rng`) so stochastic components are independently
    seedable.

    Events scheduled for the same instant are processed in the order they
    were enqueued (FIFO tie-break via a monotone sequence number), which
    keeps runs fully reproducible.
    """

    def __init__(self, seed: int = 0, trace: bool = False):
        #: Current simulated time, in seconds.
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: Named deterministic RNG streams.
        self.rng = RngRegistry(seed)
        #: Count of events processed so far (useful in benchmarks).
        self.events_processed = 0
        self._trace = trace
        self._trace_log: list[tuple[float, str]] = []
        #: Optional wall-clock profiler (telemetry.profiler) — when set,
        #: callback execution is timed and attributed per process.  A
        #: ``None`` check per step is the entire cost when detached.
        self._profiler = None

    # -- event construction -------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires after *delay* simulated seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new simulation process driving *generator*."""
        return Process(self, generator, name=name)

    def any_of(self, events) -> AnyOf:
        """Composite event firing when any of *events* fires."""
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        """Composite event firing when all of *events* have fired."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        """Place a triggered event on the queue *delay* seconds from now."""
        if delay < 0:
            raise CausalityError(f"cannot schedule event {delay} s in the past")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    # -- run loop -------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._heap)
        self.now = when
        self.events_processed += 1
        if self._trace:
            self._trace_log.append((when, repr(event)))
        callbacks, event.callbacks = event.callbacks, None
        profiler = self._profiler
        if profiler is None:
            for cb in callbacks:
                cb(event)
        else:
            profiler.run_callbacks(event, callbacks)
        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it instead of silently
            # dropping it, mirroring SimPy's behaviour.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            a number — run until the clock reaches that time.
            an :class:`Event` — run until that event is processed and
            return its value (raising if it failed).
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            result: dict[str, Any] = {}

            def _done(ev: Event) -> None:
                result["value"] = ev._value
                result["ok"] = ev._ok
                if not ev._ok:
                    ev.defused()

            stop.add_callback(_done)
            while "value" not in result:
                if not self._heap:
                    raise SimulationError(
                        "run(until=event): queue exhausted before event fired"
                    )
                self.step()
            if not result["ok"]:
                raise result["value"]
            return result["value"]

        horizon = float(until)
        if horizon < self.now:
            raise CausalityError(f"cannot run until {horizon} < now={self.now}")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self.now = horizon
        return None

    # -- introspection ---------------------------------------------------------

    @property
    def queued_events(self) -> int:
        """Number of events currently waiting on the queue."""
        return len(self._heap)

    def trace(self) -> list[tuple[float, str]]:
        """Return the (time, event) trace collected when trace=True."""
        return list(self._trace_log)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Simulator t={self.now:.6g} queued={len(self._heap)}>"
