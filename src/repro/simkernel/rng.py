"""Named, independently-seeded random streams.

Stochastic components (workload generators, jitter models...) must never
share one global RNG: adding a new random draw anywhere would perturb every
other component's sequence and break experiment reproducibility.  Instead
each component asks the registry for a stream by name; the stream's seed is
derived deterministically from the registry's master seed and the name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory for named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use.

        The same (master_seed, name) pair always yields the same sequence,
        regardless of creation order or other streams' consumption.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Reset the registry with a new master seed, dropping all streams."""
        self.master_seed = master_seed
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<RngRegistry seed={self.master_seed} "
                f"streams={sorted(self._streams)}>")
