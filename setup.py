"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so the
PEP 517 editable-install path is unavailable; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
